//! The sharded front-end: worker threads owning one engine each.

use crate::routing::shard_of;
use nemo_engine::{CacheEngine, EngineError, EngineStats, GetOutcome, MemoryBreakdown};
use nemo_flash::Nanos;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::{Builder as ThreadBuilder, JoinHandle};

/// One buffered fire-and-forget put: `(key, size, now)`.
type BufferedPut = (u64, u32, Nanos);

/// Health of one shard worker, reported by
/// [`ShardedCache::fleet_health`] / [`Dispatcher::fleet_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally; no device faults absorbed so far.
    Healthy,
    /// Still serving, but the engine has absorbed device faults (retries,
    /// quarantined zones or fault-induced misses are non-zero).
    Degraded,
    /// The engine failed fatally (typed [`EngineError`] or panic). The
    /// worker now refuses requests with typed unavailable replies instead
    /// of servicing them.
    Dead,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_DEAD: u8 = 2;

impl ShardHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            HEALTH_HEALTHY => ShardHealth::Healthy,
            HEALTH_DEGRADED => ShardHealth::Degraded,
            _ => ShardHealth::Dead,
        }
    }
}

/// What a timed (open-loop) operation was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A lookup; `hit` is the outcome. On a miss the worker also ran the
    /// demand fill, which is backing-store work and not part of the
    /// client-visible latency.
    Get {
        /// Whether the lookup hit.
        hit: bool,
        /// Candidate data-page reads the lookup issued
        /// ([`GetOutcome::set_reads`]) — the per-get set-read cost the
        /// trend windows aggregate.
        set_reads: u32,
    },
    /// An insert.
    Put,
    /// The owning shard is dead; the request was refused, not serviced.
    /// The wire layer maps this to a memcached `SERVER_ERROR`.
    Unavailable {
        /// Index of the dead shard.
        shard: usize,
    },
}

/// Completion record of one timed (open-loop) operation, sent on the
/// reply channel passed to [`ShardedCache::dispatch_get`] /
/// [`ShardedCache::dispatch_put`].
///
/// All times are virtual: `arrival ≤ start ≤ done`. Queueing delay is
/// `start - arrival` (admission wait behind the shard's in-flight
/// window), service time is `done - start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller-chosen sequence number (e.g. the global op index).
    pub seq: u64,
    /// Open-loop arrival time of the request.
    pub arrival: Nanos,
    /// Virtual time service began.
    pub start: Nanos,
    /// Virtual completion time.
    pub done: Nanos,
    /// Operation kind and outcome.
    pub kind: CompletionKind,
}

impl Completion {
    /// Queueing delay in nanoseconds (`start - arrival`).
    pub fn queueing(&self) -> u64 {
        self.start.saturating_sub(self.arrival).0
    }

    /// Service time in nanoseconds (`done - start`).
    pub fn service(&self) -> u64 {
        self.done.saturating_sub(self.start).0
    }
}

/// A request dispatched to a shard worker. Reply channels carry the
/// result back for the synchronous operations; batched puts have none.
enum Command {
    Get {
        key: u64,
        now: Nanos,
        reply: Sender<GetOutcome>,
    },
    Put {
        key: u64,
        size: u32,
        now: Nanos,
        reply: Sender<Nanos>,
    },
    PutBatch(Vec<BufferedPut>),
    /// Open-loop lookup with demand fill: admitted through the shard's
    /// in-flight window, filled on miss at the completion time.
    TimedGet {
        key: u64,
        fill_size: u32,
        arrival: Nanos,
        seq: u64,
        reply: Sender<Completion>,
    },
    /// Open-loop insert, admitted through the same window.
    TimedPut {
        key: u64,
        size: u32,
        arrival: Nanos,
        seq: u64,
        reply: Sender<Completion>,
    },
    /// Open-loop lookup *without* demand fill: a miss stays a miss. This
    /// is the wire-protocol get — a memcached client decides for itself
    /// whether to `set` after a miss, so the cache must not insert on
    /// its behalf.
    TimedLookup {
        key: u64,
        arrival: Nanos,
        seq: u64,
        reply: Sender<Completion>,
    },
    Drain {
        now: Nanos,
        reply: Sender<()>,
    },
    Stats {
        reply: Sender<EngineStats>,
    },
    Memory {
        reply: Sender<MemoryBreakdown>,
    },
}

/// Builds a [`ShardedCache`]: shard count plus channel/batch tuning.
///
/// # Examples
///
/// ```
/// use nemo_baselines::LogCacheConfig;
/// use nemo_flash::Nanos;
/// use nemo_service::ShardedCacheBuilder;
///
/// let mut cache = ShardedCacheBuilder::new(4)
///     .queue_depth(128)
///     .spawn(LogCacheConfig::small().factory());
/// cache.put(7, 250, Nanos::ZERO);
/// assert!(cache.get(7, Nanos::ZERO).hit);
/// let report = cache.finish(Nanos::ZERO);
/// assert_eq!(report.stats.puts, 1);
/// assert_eq!(report.engines.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedCacheBuilder {
    shards: usize,
    queue_depth: usize,
    batch_capacity: usize,
    inflight: usize,
    background_slices: u32,
    pipeline: usize,
}

impl ShardedCacheBuilder {
    /// A front-end with `shards` worker threads and default tuning
    /// (queue depth 256, put-batch capacity 64, in-flight window 16, one
    /// background slice per timed op).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self {
            shards,
            queue_depth: 256,
            batch_capacity: 64,
            inflight: 16,
            background_slices: 1,
            pipeline: 16,
        }
    }

    /// Number of shards the fleet will have.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounded per-shard command-queue depth (backpressure limit).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Puts buffered per shard before a fire-and-forget batch is shipped
    /// (see [`ShardedCache::put_and_forget`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn batch_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        self.batch_capacity = capacity;
        self
    }

    /// Per-shard in-flight window for timed (open-loop) operations: a
    /// request arriving at virtual time `a` begins service at `a` if
    /// fewer than `k` operations are outstanding, else at the earliest
    /// outstanding completion time — at most `k` operations are in
    /// flight on the shard at any virtual instant, and admission wait
    /// beyond that is reported as queueing delay. Synchronous
    /// [`ShardedCache::get`]/[`ShardedCache::put`] bypass the window.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn inflight(mut self, k: usize) -> Self {
        assert!(k > 0, "in-flight window must be positive");
        self.inflight = k;
        self
    }

    /// Background-work slices a worker runs after each timed operation
    /// ([`nemo_engine::CacheEngine::background_slice`]), interleaving
    /// deferred engine maintenance (e.g. Nemo's write-back scan) with
    /// request service in bounded doses. `0` disables slicing; engines
    /// then fall back to doing the work inline in bursts.
    ///
    /// Slices are tied to the command stream (never to worker idleness),
    /// so results stay deterministic across thread interleavings.
    pub fn background_slices(mut self, slices: u32) -> Self {
        self.background_slices = slices;
        self
    }

    /// Commands a worker pulls from its queue per wakeup: after the
    /// blocking receive, up to `k - 1` already-queued commands are
    /// drained non-blockingly and serviced in one pass, keeping several
    /// requests in flight per shard (their service interleaves
    /// submissions, completions and background slices inside one wakeup
    /// instead of one syscall round-trip each). Commands are applied
    /// strictly in queue order either way, so aggregates are
    /// bit-identical at any pipeline depth — the knob trades scheduling
    /// latency for throughput only.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn pipeline(mut self, k: usize) -> Self {
        assert!(k > 0, "pipeline depth must be positive");
        self.pipeline = k;
        self
    }

    /// Spawns the workers. `factory(shard)` builds the engine owned by
    /// worker `shard`; it runs on the calling thread, so it needs no
    /// `Send`/`Sync` bounds of its own — only the engines move.
    pub fn spawn<E, F>(self, mut factory: F) -> ShardedCache<E>
    where
        E: CacheEngine + 'static,
        F: FnMut(usize) -> E,
    {
        let mut name = "sharded";
        let mut senders = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        let mut health = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let engine = factory(shard);
            name = engine.name();
            let (tx, rx) = sync_channel(self.queue_depth);
            senders.push(tx);
            let tuning = WorkerTuning {
                inflight: self.inflight,
                background_slices: self.background_slices,
                pipeline: self.pipeline,
                shard,
            };
            let shard_health = Arc::new(AtomicU8::new(HEALTH_HEALTHY));
            health.push(Arc::clone(&shard_health));
            let handle = ThreadBuilder::new()
                .name(format!("{name}-shard-{shard}"))
                .spawn(move || run_worker(engine, rx, tuning, shard_health))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardedCache {
            name,
            senders,
            workers,
            health,
            pending: (0..self.shards).map(|_| RefCell::new(Vec::new())).collect(),
            batch_capacity: self.batch_capacity,
        }
    }
}

/// Per-worker knobs for the timed (open-loop) path.
#[derive(Debug, Clone, Copy)]
struct WorkerTuning {
    inflight: usize,
    background_slices: u32,
    pipeline: usize,
    shard: usize,
}

/// Virtual-time admission window of one shard: completion times of the
/// `inflight` most recently admitted timed operations. When the window
/// is full, a new operation starts no earlier than the *earliest* of
/// those completions — the first slot to free — so at most `inflight`
/// requests are outstanding on the shard at any virtual instant and any
/// wait beyond that shows up as queueing delay. (Completions can finish
/// out of admission order: a buffered-memory hit returns at its start
/// time while an earlier multi-page miss is still reading, so a min-pop
/// is what "a slot frees" actually means.)
struct InflightWindow {
    /// Min-heap of outstanding completion times.
    slots: std::collections::BinaryHeap<std::cmp::Reverse<Nanos>>,
    inflight: usize,
}

impl InflightWindow {
    fn new(inflight: usize) -> Self {
        Self {
            slots: std::collections::BinaryHeap::with_capacity(inflight),
            inflight,
        }
    }

    /// Earliest virtual time a request arriving at `arrival` may start.
    fn admit(&mut self, arrival: Nanos) -> Nanos {
        if self.slots.len() == self.inflight {
            let std::cmp::Reverse(freed) = self.slots.pop().expect("window is full");
            arrival.max(freed)
        } else {
            arrival
        }
    }

    /// Records a started operation's completion time.
    fn complete(&mut self, done: Nanos) {
        self.slots.push(std::cmp::Reverse(done));
    }
}

/// Shard worker loop: applies commands in arrival order until the
/// front-end hangs up, then hands the engine back through the join.
///
/// Each wakeup blocks for one command, then drains up to
/// `tuning.pipeline - 1` more that are already queued and services the
/// whole batch back-to-back. Under load this keeps several requests in
/// flight per shard — their device submissions, completions and
/// background slices interleave within one scheduling quantum instead
/// of paying a blocking receive per command. Commands are applied
/// strictly in queue order regardless of batch boundaries, so every
/// engine transition (and thus every aggregate) is identical at any
/// pipeline depth.
///
/// Timed commands additionally run up to `tuning.background_slices`
/// bounded slices of deferred engine maintenance *after* the foreground
/// operation — foreground first in call order means foreground flash
/// operations claim the device dies first at any given timestamp, and
/// tying slices to the command stream (never to wall-clock idleness)
/// keeps results deterministic across thread interleavings.
///
/// Supervision: a fatal [`EngineError`] from the engine — or a panic
/// inside it — does not take the worker thread down. The shard's health
/// flips to [`ShardHealth::Dead`], and the worker keeps draining its
/// queue, refusing every subsequent request with a typed
/// [`CompletionKind::Unavailable`] reply (or a dropped reply channel for
/// the synchronous paths, which the front-end maps to
/// [`EngineError::ShardUnavailable`]) — requesters always get an answer,
/// never a wedged channel. The engine value survives for post-mortem
/// inspection via [`ShardedCache::finish`].
fn run_worker<E: CacheEngine>(
    mut engine: E,
    rx: Receiver<Command>,
    tuning: WorkerTuning,
    health: Arc<AtomicU8>,
) -> E {
    let mut window = InflightWindow::new(tuning.inflight);
    let mut intake = Vec::with_capacity(tuning.pipeline);
    while let Ok(first) = rx.recv() {
        intake.push(first);
        while intake.len() < tuning.pipeline {
            match rx.try_recv() {
                Ok(cmd) => intake.push(cmd),
                Err(_) => break,
            }
        }
        let mut fatal = false;
        let mut drained = intake.drain(..);
        for cmd in drained.by_ref() {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                apply_command(&mut engine, &mut window, &tuning, cmd)
            }));
            match outcome {
                Ok(Ok(())) => {}
                // Fatal engine error: the command already received its
                // typed unavailable reply inside `apply_command`.
                Ok(Err(_)) => {
                    fatal = true;
                    break;
                }
                // Engine panic: the in-flight command's reply channel was
                // dropped during unwinding, which requesters observe as a
                // disconnect; everything still queued is refused below.
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            health.store(HEALTH_DEAD, Ordering::Release);
            for cmd in drained {
                refuse_command(cmd, tuning.shard);
            }
            // Keep the queue open: answer everything the front-end sends
            // from now on with typed refusals instead of wedging senders.
            while let Ok(cmd) = rx.recv() {
                refuse_command(cmd, tuning.shard);
            }
            return engine;
        }
        drop(drained);
        // Promote Healthy -> Degraded once the engine reports absorbed
        // faults; checked per wakeup, not per command, to stay cheap.
        if health.load(Ordering::Relaxed) == HEALTH_HEALTHY {
            let s = engine.stats();
            if s.device_retries > 0 || s.quarantined_zones > 0 || s.fault_induced_misses > 0 {
                health.store(HEALTH_DEGRADED, Ordering::Release);
            }
        }
    }
    engine
}

/// Refuses a command on behalf of a dead shard: timed operations get a
/// typed [`CompletionKind::Unavailable`] completion; synchronous ones
/// get their reply channel dropped (a disconnect the front-end converts
/// to [`EngineError::ShardUnavailable`]).
fn refuse_command(cmd: Command, shard: usize) {
    let unavailable = |seq, arrival, reply: Sender<Completion>| {
        let _ = reply.send(Completion {
            seq,
            arrival,
            start: arrival,
            done: arrival,
            kind: CompletionKind::Unavailable { shard },
        });
    };
    match cmd {
        Command::TimedGet {
            seq,
            arrival,
            reply,
            ..
        }
        | Command::TimedPut {
            seq,
            arrival,
            reply,
            ..
        }
        | Command::TimedLookup {
            seq,
            arrival,
            reply,
            ..
        } => unavailable(seq, arrival, reply),
        // Dropping the reply sender disconnects the requester's receive.
        Command::Get { .. }
        | Command::Put { .. }
        | Command::PutBatch(_)
        | Command::Drain { .. }
        | Command::Stats { .. }
        | Command::Memory { .. } => {}
    }
}

/// Applies one command to the shard's engine.
///
/// A fatal [`EngineError`] propagates to [`run_worker`], which kills the
/// shard — but only after this function has answered the requester:
/// timed commands get a typed [`CompletionKind::Unavailable`] completion,
/// synchronous ones a dropped reply channel.
fn apply_command<E: CacheEngine>(
    engine: &mut E,
    window: &mut InflightWindow,
    tuning: &WorkerTuning,
    cmd: Command,
) -> Result<(), EngineError> {
    let unavailable = |seq, arrival, start, reply: &Sender<Completion>| {
        let _ = reply.send(Completion {
            seq,
            arrival,
            start,
            done: start,
            kind: CompletionKind::Unavailable {
                shard: tuning.shard,
            },
        });
    };
    // Reply sends only fail if the requester gave up waiting (it
    // never does today); the engine transition already happened, so
    // dropping the reply is harmless either way.
    match cmd {
        Command::Get { key, now, reply } => {
            // On error the reply sender drops, which the front-end maps
            // to `EngineError::ShardUnavailable`.
            let _ = reply.send(engine.try_get(key, now)?);
        }
        Command::Put {
            key,
            size,
            now,
            reply,
        } => {
            let _ = reply.send(engine.try_put(key, size, now)?);
        }
        Command::PutBatch(batch) => {
            for (key, size, now) in batch {
                engine.try_put(key, size, now)?;
            }
        }
        Command::TimedGet {
            key,
            fill_size,
            arrival,
            seq,
            reply,
        } => {
            let start = window.admit(arrival);
            let out = match engine.try_get(key, start) {
                Ok(out) => out,
                Err(e) => {
                    unavailable(seq, arrival, start, &reply);
                    return Err(e);
                }
            };
            let done = out.done_at;
            if !out.hit {
                // Demand fill at the miss's completion time; backing
                // store work, not client-visible latency.
                if let Err(e) = engine.try_put(key, fill_size, done) {
                    unavailable(seq, arrival, start, &reply);
                    return Err(e);
                }
            }
            window.complete(done);
            run_background(engine, done, tuning.background_slices);
            let _ = reply.send(Completion {
                seq,
                arrival,
                start,
                done,
                kind: CompletionKind::Get {
                    hit: out.hit,
                    set_reads: out.set_reads,
                },
            });
        }
        Command::TimedPut {
            key,
            size,
            arrival,
            seq,
            reply,
        } => {
            let start = window.admit(arrival);
            let done = match engine.try_put(key, size, start) {
                Ok(done) => done,
                Err(e) => {
                    unavailable(seq, arrival, start, &reply);
                    return Err(e);
                }
            };
            window.complete(done);
            run_background(engine, done, tuning.background_slices);
            let _ = reply.send(Completion {
                seq,
                arrival,
                start,
                done,
                kind: CompletionKind::Put,
            });
        }
        Command::TimedLookup {
            key,
            arrival,
            seq,
            reply,
        } => {
            let start = window.admit(arrival);
            let out = match engine.try_get(key, start) {
                Ok(out) => out,
                Err(e) => {
                    unavailable(seq, arrival, start, &reply);
                    return Err(e);
                }
            };
            let done = out.done_at;
            window.complete(done);
            run_background(engine, done, tuning.background_slices);
            let _ = reply.send(Completion {
                seq,
                arrival,
                start,
                done,
                kind: CompletionKind::Get {
                    hit: out.hit,
                    set_reads: out.set_reads,
                },
            });
        }
        Command::Drain { now, reply } => {
            engine.drain(now);
            let _ = reply.send(());
        }
        Command::Stats { reply } => {
            let _ = reply.send(engine.stats());
        }
        Command::Memory { reply } => {
            let _ = reply.send(engine.memory());
        }
    }
    Ok(())
}

/// Runs up to `slices` bounded background slices at `now`.
fn run_background<E: CacheEngine>(engine: &mut E, now: Nanos, slices: u32) {
    for _ in 0..slices {
        if !engine.background_pending() {
            break;
        }
        engine.background_slice(now);
    }
}

/// A cloneable, thread-safe dispatch handle onto a shard fleet, for
/// callers that drive the fleet from many threads at once — the wire
/// front-end in `nemo-proto` hands one to every connection handler.
///
/// [`ShardedCache`] itself is deliberately not `Sync` (its fire-and-
/// forget put buffers are single-dispatcher state); this handle carries
/// only the shard senders, so clones dispatch concurrently without
/// locks. Sends block when the owning shard's bounded command queue is
/// full, which is the service backpressure a connection handler wants:
/// an overloaded shard stalls its connections instead of buffering
/// unboundedly.
///
/// Ordering: commands from one `Dispatcher` clone are applied in send
/// order per shard. Interleaving *across* clones is whatever the
/// threads race to — callers needing a deterministic global order must
/// dispatch from a single thread. A `Dispatcher` bypasses the owning
/// handle's buffered [`ShardedCache::put_and_forget`] batches; don't
/// mix the two paths while dispatching, or shard order between them is
/// unspecified.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    senders: Vec<SyncSender<Command>>,
    health: Vec<Arc<AtomicU8>>,
}

impl Dispatcher {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of(key, self.senders.len())
    }

    /// Current health of every shard, indexed by shard id. Lock-free;
    /// safe to poll from connection handlers.
    pub fn fleet_health(&self) -> Vec<ShardHealth> {
        self.health
            .iter()
            .map(|h| ShardHealth::from_u8(h.load(Ordering::Acquire)))
            .collect()
    }

    fn send(&self, shard: usize, cmd: Command) {
        self.senders[shard].send(cmd).expect("shard worker alive");
    }

    /// Dispatches an open-loop lookup *without* demand fill: the worker
    /// admits it through the in-flight window, services it, and reports
    /// a [`Completion`] on `reply`; a miss leaves the cache untouched.
    /// This is the wire-protocol `get` path — whether to insert after a
    /// miss is the remote client's call, not the cache's.
    pub fn dispatch_lookup(&self, key: u64, arrival: Nanos, seq: u64, reply: &Sender<Completion>) {
        self.send(
            self.shard_of(key),
            Command::TimedLookup {
                key,
                arrival,
                seq,
                reply: reply.clone(),
            },
        );
    }

    /// Dispatches an open-loop insert; the counterpart of
    /// [`Self::dispatch_lookup`]. See [`ShardedCache::dispatch_put`].
    pub fn dispatch_put(
        &self,
        key: u64,
        size: u32,
        arrival: Nanos,
        seq: u64,
        reply: &Sender<Completion>,
    ) {
        self.send(
            self.shard_of(key),
            Command::TimedPut {
                key,
                size,
                arrival,
                seq,
                reply: reply.clone(),
            },
        );
    }
}

/// Final state of a sharded run, produced by [`ShardedCache::finish`].
///
/// Engines are drained *before* the final counters are read, so
/// `stats` includes everything still sitting in in-memory buffers (an
/// undrained Nemo under-reports flash writes and WA).
#[derive(Debug)]
pub struct ShardedReport<E> {
    /// Aggregate counters across all shards ([`EngineStats::merge`]).
    pub stats: EngineStats,
    /// Post-drain counters per shard, indexed by shard id.
    pub per_shard: Vec<EngineStats>,
    /// Aggregate metadata memory ([`MemoryBreakdown::merge`]).
    pub memory: MemoryBreakdown,
    /// The engines themselves, indexed by shard id, for inspection
    /// beyond the common counters.
    pub engines: Vec<E>,
}

/// A concurrent cache front-end: `N` worker threads, each owning one
/// single-threaded [`CacheEngine`] (and its simulated device) outright,
/// fed by bounded channels. Requests route to shards by key hash
/// ([`crate::shard_of`]), so shard state is disjoint — no locks anywhere.
///
/// This is the shard-per-core pattern production flash caches deploy
/// (CacheLib partitions its small-object cache the same way; the paper's
/// Nemo runs background flushing/write-back on dedicated threads inside
/// it). The simulator engines stay deterministic and single-threaded;
/// concurrency lives entirely in this layer.
///
/// # Determinism contract
///
/// For a fixed request sequence and shard count, the aggregate
/// [`Self::stats`] after [`Self::drain`] — hit ratio, ALWA, every
/// counter — is identical across runs, regardless of thread scheduling,
/// queue depth, or put-batch capacity. Routing is a pure function of the
/// key, each worker applies its commands in the order this handle sent
/// them, and shards share no state, so interleaving across shards cannot
/// affect any shard's outcome. (Dispatching the same sequence from
/// multiple handle clones would forfeit this; the handle is deliberately
/// not clonable.)
///
/// # Examples
///
/// ```
/// use nemo_core::NemoConfig;
/// use nemo_flash::Nanos;
/// use nemo_service::ShardedCacheBuilder;
///
/// let mut cache = ShardedCacheBuilder::new(2).spawn(NemoConfig::small().factory());
/// for key in 0..100u64 {
///     cache.put_and_forget(key, 200, Nanos::ZERO);
/// }
/// assert!(cache.get(1, Nanos::ZERO).hit); // reads see buffered puts
/// let report = cache.finish(Nanos::ZERO);
/// assert_eq!(report.stats.puts, 100);
/// ```
#[derive(Debug)]
pub struct ShardedCache<E: CacheEngine + 'static> {
    name: &'static str,
    senders: Vec<SyncSender<Command>>,
    workers: Vec<JoinHandle<E>>,
    /// Per-shard health flags, shared with the workers.
    health: Vec<Arc<AtomicU8>>,
    /// Fire-and-forget puts buffered per shard until a batch fills (or a
    /// synchronous operation on the shard forces them out first, keeping
    /// per-shard order equal to dispatch order).
    pending: Vec<RefCell<Vec<BufferedPut>>>,
    batch_capacity: usize,
}

impl<E: CacheEngine + 'static> ShardedCache<E> {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of(key, self.senders.len())
    }

    fn send(&self, shard: usize, cmd: Command) {
        self.senders[shard].send(cmd).expect("shard worker alive");
    }

    /// Ships `shard`'s buffered puts, preserving their dispatch order
    /// ahead of whatever command the caller sends next.
    fn flush_shard(&self, shard: usize) {
        let batch = std::mem::take(&mut *self.pending[shard].borrow_mut());
        if !batch.is_empty() {
            self.send(shard, Command::PutBatch(batch));
        }
    }

    /// Ships every shard's buffered fire-and-forget puts.
    pub fn flush_puts(&self) {
        for shard in 0..self.senders.len() {
            self.flush_shard(shard);
        }
    }

    /// Looks up `key` at virtual time `now`, blocking on the owning
    /// shard. Buffered puts for that shard are shipped first, so a get
    /// always observes every put dispatched before it.
    ///
    /// If the owning shard is dead (its engine failed fatally or
    /// panicked), returns [`EngineError::ShardUnavailable`] instead of
    /// hanging.
    pub fn try_get(&self, key: u64, now: Nanos) -> Result<GetOutcome, EngineError> {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        let (reply, rx) = channel();
        self.send(shard, Command::Get { key, now, reply });
        rx.recv()
            .map_err(|_| EngineError::ShardUnavailable { shard })
    }

    /// Panicking convenience wrapper over [`Self::try_get`].
    ///
    /// # Panics
    ///
    /// Panics if the owning shard is dead.
    pub fn get(&self, key: u64, now: Nanos) -> GetOutcome {
        self.try_get(key, now)
            .unwrap_or_else(|e| panic!("engine failed fatally on get: {e}"))
    }

    /// Inserts synchronously, returning the foreground completion time
    /// reported by the owning shard's engine — or
    /// [`EngineError::ShardUnavailable`] if the owning shard is dead.
    pub fn try_put(&self, key: u64, size: u32, now: Nanos) -> Result<Nanos, EngineError> {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        let (reply, rx) = channel();
        self.send(
            shard,
            Command::Put {
                key,
                size,
                now,
                reply,
            },
        );
        rx.recv()
            .map_err(|_| EngineError::ShardUnavailable { shard })
    }

    /// Panicking convenience wrapper over [`Self::try_put`].
    ///
    /// # Panics
    ///
    /// Panics if the owning shard is dead.
    pub fn put(&self, key: u64, size: u32, now: Nanos) -> Nanos {
        self.try_put(key, size, now)
            .unwrap_or_else(|e| panic!("engine failed fatally on put: {e}"))
    }

    /// Current health of every shard, indexed by shard id: `Healthy`
    /// until the engine first reports absorbed faults (retries,
    /// quarantines, fault-induced misses), `Degraded` after, `Dead` once
    /// a fatal engine error or panic kills the shard. Lock-free.
    pub fn fleet_health(&self) -> Vec<ShardHealth> {
        self.health
            .iter()
            .map(|h| ShardHealth::from_u8(h.load(Ordering::Acquire)))
            .collect()
    }

    /// Dispatches an open-loop lookup (with demand fill on miss) to the
    /// owning shard *without blocking on the result*: the worker admits
    /// the request through its in-flight window
    /// ([`ShardedCacheBuilder::inflight`]), services it, interleaves
    /// bounded background slices, and sends a [`Completion`] on `reply`.
    /// Poll the receiving end from a completion reactor;
    /// `crate::openloop` provides one.
    ///
    /// Buffered fire-and-forget puts for the shard are shipped first, so
    /// the lookup observes every put dispatched before it.
    pub fn dispatch_get(
        &self,
        key: u64,
        fill_size: u32,
        arrival: Nanos,
        seq: u64,
        reply: &Sender<Completion>,
    ) {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        self.send(
            shard,
            Command::TimedGet {
                key,
                fill_size,
                arrival,
                seq,
                reply: reply.clone(),
            },
        );
    }

    /// Dispatches an open-loop insert to the owning shard without
    /// blocking; the counterpart of [`Self::dispatch_get`].
    pub fn dispatch_put(
        &self,
        key: u64,
        size: u32,
        arrival: Nanos,
        seq: u64,
        reply: &Sender<Completion>,
    ) {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        self.send(
            shard,
            Command::TimedPut {
                key,
                size,
                arrival,
                seq,
                reply: reply.clone(),
            },
        );
    }

    /// A cloneable, thread-safe [`Dispatcher`] onto this fleet, for
    /// driving the shards from many threads at once. Buffered
    /// fire-and-forget puts are shipped first so dispatched commands
    /// can't overtake them.
    pub fn dispatcher(&self) -> Dispatcher {
        self.flush_puts();
        Dispatcher {
            senders: self.senders.clone(),
            health: self.health.clone(),
        }
    }

    /// Fire-and-forget insert: buffered locally and shipped to the owning
    /// shard in batches (the builder's `batch_capacity`), amortizing the
    /// channel round-trip. Per-shard ordering with respect to [`Self::get`],
    /// [`Self::put`], [`Self::drain`] and [`Self::stats`] is preserved —
    /// those operations flush the buffer first.
    pub fn put_and_forget(&self, key: u64, size: u32, now: Nanos) {
        let shard = self.shard_of(key);
        let full = {
            let mut pending = self.pending[shard].borrow_mut();
            pending.push((key, size, now));
            pending.len() >= self.batch_capacity
        };
        if full {
            self.flush_shard(shard);
        }
    }

    /// Forces every shard's in-memory engine buffers to flash and waits
    /// for all shards to acknowledge. Buffered puts ship first. Dead
    /// shards refuse the drain (their reply channel drops); the fleet
    /// drains around them.
    pub fn drain(&self, now: Nanos) {
        self.flush_puts();
        let acks: Vec<Receiver<()>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply, rx) = channel();
                tx.send(Command::Drain { now, reply })
                    .expect("shard worker alive");
                rx
            })
            .collect();
        for ack in acks {
            let _ = ack.recv();
        }
    }

    /// Live per-shard counters, indexed by shard id. Buffered puts ship
    /// first so the counters cover every dispatched request. A dead
    /// shard reports zeroed counters (its engine is unreachable until
    /// [`Self::finish`] hands it back).
    pub fn shard_stats(&self) -> Vec<EngineStats> {
        self.flush_puts();
        let replies: Vec<Receiver<EngineStats>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply, rx) = channel();
                tx.send(Command::Stats { reply })
                    .expect("shard worker alive");
                rx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().unwrap_or_default())
            .collect()
    }

    /// Live aggregate counters across all shards.
    ///
    /// Note: counters for work still sitting in engine *internal* buffers
    /// (e.g. Nemo's in-memory SGs) are whatever the engines report live;
    /// call [`Self::drain`] first — or use [`Self::finish`] — for final,
    /// fully-flushed numbers.
    pub fn stats(&self) -> EngineStats {
        EngineStats::merge_all(&self.shard_stats())
    }

    /// Aggregate metadata memory across all shards.
    pub fn memory(&self) -> MemoryBreakdown {
        self.flush_puts();
        let replies: Vec<Receiver<MemoryBreakdown>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply, rx) = channel();
                tx.send(Command::Memory { reply })
                    .expect("shard worker alive");
                rx
            })
            .collect();
        let parts: Vec<MemoryBreakdown> = replies
            .into_iter()
            .map(|rx| rx.recv().unwrap_or_default())
            .collect();
        MemoryBreakdown::merge_all(&parts)
    }

    /// Ends the run: drains every shard at virtual time `now`, reads the
    /// final post-drain counters, shuts the workers down and hands the
    /// engines back.
    ///
    /// Draining *before* the final read is load-bearing: engines buffer
    /// writes in memory (Nemo's in-memory SGs, the log baseline's open
    /// page), and reading WA without draining under-reports flash traffic.
    pub fn finish(mut self, now: Nanos) -> ShardedReport<E> {
        self.drain(now);
        let per_shard = self.shard_stats();
        let memory = self.memory();
        let stats = EngineStats::merge_all(&per_shard);
        // Hang up so the workers fall out of their receive loops, then
        // collect the engines. Drop sees empty vectors and does nothing.
        self.senders = Vec::new();
        let engines = std::mem::take(&mut self.workers)
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        ShardedReport {
            stats,
            per_shard,
            memory,
            engines,
        }
    }
}

impl<E: CacheEngine + 'static> Drop for ShardedCache<E> {
    fn drop(&mut self) {
        // Ship stragglers, hang up, and reap the worker threads so a
        // dropped front-end never leaks detached threads. Sends here are
        // best-effort — this Drop also runs while unwinding from a dead
        // worker, and a panicking send would escalate to an abort that
        // masks the worker's original panic.
        for (shard, sender) in self.senders.iter().enumerate() {
            let batch = std::mem::take(&mut *self.pending[shard].borrow_mut());
            if !batch.is_empty() {
                let _ = sender.send(Command::PutBatch(batch));
            }
        }
        self.senders = Vec::new();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A sharded front-end is itself a [`CacheEngine`], so every harness that
/// drives engines through the trait — `nemo_sim::Replay`, the bench
/// loops, the cross-engine tests — can drive a shard fleet unchanged.
/// Operations block on the owning shard; `stats`/`memory` aggregate.
impl<E: CacheEngine + 'static> CacheEngine for ShardedCache<E> {
    /// The wrapped engine's name (shards are homogeneous).
    fn name(&self) -> &'static str {
        self.name
    }

    fn try_get(&mut self, key: u64, now: Nanos) -> Result<GetOutcome, EngineError> {
        ShardedCache::try_get(self, key, now)
    }

    fn try_put(&mut self, key: u64, size: u32, now: Nanos) -> Result<Nanos, EngineError> {
        ShardedCache::try_put(self, key, size, now)
    }

    fn stats(&self) -> EngineStats {
        ShardedCache::stats(self)
    }

    fn memory(&self) -> MemoryBreakdown {
        ShardedCache::memory(self)
    }

    fn drain(&mut self, now: Nanos) {
        ShardedCache::drain(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_baselines::LogCacheConfig;

    fn small_sharded(shards: usize) -> ShardedCache<nemo_baselines::LogCache> {
        ShardedCacheBuilder::new(shards).spawn(LogCacheConfig::small().factory())
    }

    #[test]
    fn get_put_roundtrip_across_shards() {
        let cache = small_sharded(3);
        for key in 0..300u64 {
            cache.put(key, 200, Nanos::ZERO);
        }
        for key in 0..300u64 {
            assert!(cache.get(key, Nanos::ZERO).hit, "key {key} lost");
        }
        let stats = cache.stats();
        assert_eq!(stats.puts, 300);
        assert_eq!(stats.gets, 300);
        assert_eq!(stats.hits, 300);
    }

    #[test]
    fn buffered_puts_are_visible_to_gets() {
        // Batch capacity larger than the workload: nothing would ship
        // without the read-path flush.
        let cache = ShardedCacheBuilder::new(2)
            .batch_capacity(1024)
            .spawn(LogCacheConfig::small().factory());
        for key in 0..50u64 {
            cache.put_and_forget(key, 180, Nanos::ZERO);
        }
        for key in 0..50u64 {
            assert!(cache.get(key, Nanos::ZERO).hit, "key {key} invisible");
        }
    }

    #[test]
    fn stats_cover_buffered_puts() {
        let cache = ShardedCacheBuilder::new(2)
            .batch_capacity(1024)
            .spawn(LogCacheConfig::small().factory());
        for key in 0..64u64 {
            cache.put_and_forget(key, 180, Nanos::ZERO);
        }
        assert_eq!(cache.stats().puts, 64);
    }

    #[test]
    fn finish_returns_one_engine_per_shard() {
        let cache = small_sharded(4);
        for key in 0..100u64 {
            cache.put(key, 200, Nanos::ZERO);
        }
        let report = cache.finish(Nanos::ZERO);
        assert_eq!(report.engines.len(), 4);
        assert_eq!(report.per_shard.len(), 4);
        assert_eq!(report.stats.puts, 100);
        // Every shard took some of the uniform key range.
        for (shard, s) in report.per_shard.iter().enumerate() {
            assert!(s.puts > 0, "shard {shard} idle");
        }
        // The report's aggregate equals re-merging the per-shard stats.
        assert_eq!(report.stats, EngineStats::merge_all(&report.per_shard));
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let cache = small_sharded(2);
        cache.put(1, 200, Nanos::ZERO);
        drop(cache); // must not hang or leak
    }

    #[test]
    fn trait_object_usage() {
        let mut cache: Box<dyn CacheEngine> = Box::new(small_sharded(2));
        cache.put(9, 250, Nanos::ZERO);
        assert!(cache.get(9, Nanos::ZERO).hit);
        assert_eq!(cache.name(), "log");
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        ShardedCacheBuilder::new(0);
    }

    #[test]
    fn dispatcher_lookup_does_not_demand_fill() {
        let cache = small_sharded(2);
        let dispatcher = cache.dispatcher();
        let (tx, rx) = channel();
        dispatcher.dispatch_lookup(42, Nanos::ZERO, 1, &tx);
        let c = rx.recv().unwrap();
        assert_eq!(c.seq, 1);
        assert!(matches!(c.kind, CompletionKind::Get { hit: false, .. }));
        // The miss must not have inserted anything (unlike dispatch_get).
        let stats = cache.stats();
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.puts, 0);
        // A put through the dispatcher, then a hit.
        dispatcher.dispatch_put(42, 200, Nanos::ZERO, 2, &tx);
        assert!(matches!(rx.recv().unwrap().kind, CompletionKind::Put));
        dispatcher.dispatch_lookup(42, Nanos::ZERO, 3, &tx);
        assert!(matches!(
            rx.recv().unwrap().kind,
            CompletionKind::Get { hit: true, .. }
        ));
    }

    #[test]
    fn dispatcher_clones_share_the_fleet_across_threads() {
        let cache = small_sharded(4);
        let dispatcher = cache.dispatcher();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let d = dispatcher.clone();
                std::thread::spawn(move || {
                    let (tx, rx) = channel();
                    for i in 0..100u64 {
                        d.dispatch_put(t * 1000 + i, 180, Nanos::ZERO, i, &tx);
                    }
                    for _ in 0..100 {
                        rx.recv().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().puts, 400);
    }

    /// An engine whose gets always panic, killing its shard.
    #[derive(Default)]
    struct Bomb {
        puts: u64,
    }
    impl CacheEngine for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn try_get(&mut self, _key: u64, _now: Nanos) -> Result<GetOutcome, EngineError> {
            panic!("engine invariant violated");
        }
        fn try_put(&mut self, _key: u64, _size: u32, now: Nanos) -> Result<Nanos, EngineError> {
            self.puts += 1;
            Ok(now)
        }
        fn stats(&self) -> EngineStats {
            EngineStats {
                puts: self.puts,
                ..EngineStats::default()
            }
        }
        fn memory(&self) -> MemoryBreakdown {
            MemoryBreakdown::default()
        }
    }

    #[test]
    fn drop_after_worker_death_does_not_abort() {
        let cache = ShardedCacheBuilder::new(2)
            .batch_capacity(1024)
            .spawn(|_| Bomb::default());
        // The get's engine panics; the supervisor converts that into a
        // typed unavailable error, which the panicking wrapper surfaces.
        let attempt =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.get(7, Nanos::ZERO)));
        assert!(attempt.is_err(), "bomb shard should be unavailable");
        // Leave puts buffered for the dead shard: Drop's best-effort
        // flush must swallow a refused batch, not double-panic into an
        // abort (which would fail this whole test binary).
        for key in 0..64u64 {
            cache.put_and_forget(key, 10, Nanos::ZERO);
        }
        drop(cache);
    }

    #[test]
    fn dead_shard_reports_typed_errors_and_health() {
        let cache = ShardedCacheBuilder::new(2)
            .batch_capacity(1024)
            .spawn(|_| Bomb::default());
        let dead = cache.shard_of(7);
        let err = cache.try_get(7, Nanos::ZERO).expect_err("bomb must die");
        assert!(matches!(err, EngineError::ShardUnavailable { shard } if shard == dead));
        // Every later request on the dead shard gets a typed refusal, not
        // a hang — synchronous and timed paths alike.
        assert!(cache.try_get(7, Nanos::ZERO).is_err());
        assert!(cache.try_put(7, 100, Nanos::ZERO).is_err());
        let (tx, rx) = channel();
        cache.dispatch_get(7, 100, Nanos::ZERO, 99, &tx);
        let c = rx.recv().expect("timed ops always complete");
        assert_eq!(c.seq, 99);
        assert!(matches!(c.kind, CompletionKind::Unavailable { shard } if shard == dead));
        // Health reflects the death; the sibling shard still serves.
        let health = cache.fleet_health();
        assert_eq!(health[dead], ShardHealth::Dead);
        let live = 1 - dead;
        assert_eq!(health[live], ShardHealth::Healthy);
        let live_key = (0..u64::MAX).find(|k| cache.shard_of(*k) == live).unwrap();
        assert!(cache.try_put(live_key, 100, Nanos::ZERO).is_ok());
        // Fleet-wide operations route around the corpse.
        cache.drain(Nanos::ZERO);
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[dead], EngineStats::default());
        assert_eq!(stats[live].puts, 1);
        let report = cache.finish(Nanos::ZERO);
        assert_eq!(report.engines.len(), 2, "dead engine is still returned");
    }
}
