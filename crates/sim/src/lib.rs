//! Trace-replay harness: drives any [`CacheEngine`] with a workload on a
//! paced virtual clock and collects everything the paper's evaluation
//! reports — WA (cumulative and trended), miss-ratio trends, windowed
//! latency percentiles and flash-write rates.
//!
//! This driver is **closed loop**: it blocks on every operation, so the
//! offered load can never exceed what the engine absorbs and overload
//! shows up as a longer run rather than as queueing. That is the right
//! tool for WA and miss-ratio experiments; for latency under offered
//! load use `nemo-service`'s open-loop driver, which admits requests at
//! the arrival rate regardless and reports queueing delay separately.
//!
//! The latency each operation reports is `done_at - now`, whatever the
//! engine's device says that is: on modeled `SimFlash` backends it is
//! the virtual per-die timeline, while an engine over `RealFlash`
//! returns *measured* wall-clock durations — the same harness then
//! produces measured latency histograms (how `nemo-bench`'s
//! `device_validation` experiment compares the two side by side).
//!
//! # Examples
//!
//! ```
//! use nemo_baselines::{LogCache, LogCacheConfig};
//! use nemo_sim::{Replay, ReplayConfig};
//! use nemo_trace::{TraceConfig, TraceGenerator};
//!
//! let mut engine = LogCache::new(LogCacheConfig::small());
//! let mut trace = TraceGenerator::new(TraceConfig::twitter_merged(0.0002));
//! let result = Replay::new(ReplayConfig::quick(20_000)).run(&mut engine, &mut trace);
//! assert!(result.stats.gets > 0);
//! assert!(result.stats.alwa() >= 1.0 || result.stats.puts == 0);
//! ```

use nemo_engine::{CacheEngine, EngineStats};
use nemo_flash::{Geometry, Nanos};
use nemo_metrics::LatencyHistogram;
pub use nemo_metrics::LatencyWindow;
use nemo_trace::{RequestKind, TraceGenerator};

/// Replay parameters.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Total requests to replay.
    pub ops: u64,
    /// Paced arrival rate in requests/second of virtual time (the
    /// driver still blocks on each op; see the crate docs).
    pub arrival_rate: f64,
    /// Interval (in ops) between trend samples.
    pub sample_every: u64,
    /// Requests excluded from the aggregate latency histogram (the cache
    /// warm-up phase). Trend series still cover the full run.
    pub warmup_ops: u64,
}

impl ReplayConfig {
    /// A configuration for quick tests: 50k ops/s, sampling every 1/20th
    /// of the run.
    pub fn quick(ops: u64) -> Self {
        Self {
            ops,
            arrival_rate: 50_000.0,
            sample_every: (ops / 20).max(1),
            warmup_ops: 0,
        }
    }
}

/// Everything a replay produces.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Final engine counters.
    pub stats: EngineStats,
    /// Read-latency histogram over the whole run (post-warm-up).
    pub latency: LatencyHistogram,
    /// Windowed latency percentiles.
    pub latency_windows: Vec<LatencyWindow>,
    /// `(ops, cumulative WA)` samples (Fig. 14).
    pub wa_series: Vec<(u64, f64)>,
    /// `(ops, per-window WA)` samples.
    pub wa_window_series: Vec<(u64, f64)>,
    /// `(ops, per-window miss ratio)` samples (Fig. 16).
    pub miss_series: Vec<(u64, f64)>,
    /// `(virtual minute, flash MB written in that window)` (Fig. 13).
    pub write_rate_series: Vec<(f64, f64)>,
    /// Virtual end time of the replay.
    pub sim_end: Nanos,
}

/// The replay driver. Get misses trigger cache fills (`put`), the
/// standard demand-fill policy the paper's replays use.
#[derive(Debug, Clone)]
pub struct Replay {
    cfg: ReplayConfig,
}

impl Replay {
    /// Creates a driver.
    pub fn new(cfg: ReplayConfig) -> Self {
        Self { cfg }
    }

    /// Replays `trace` against `engine`.
    pub fn run(&self, engine: &mut dyn CacheEngine, trace: &mut TraceGenerator) -> ReplayResult {
        let cfg = &self.cfg;
        let gap = Nanos((1e9 / cfg.arrival_rate) as u64);
        let mut now = Nanos::ZERO;
        let mut latency = LatencyHistogram::new();
        let mut window_latency = LatencyHistogram::new();
        let mut latency_windows = Vec::new();
        let mut wa_series = Vec::new();
        let mut wa_window_series = Vec::new();
        let mut miss_series = Vec::new();
        let mut write_rate_series = Vec::new();
        let mut last = Snapshot::default();
        for op in 1..=cfg.ops {
            now += gap;
            let req = trace.next_request();
            match req.kind {
                RequestKind::Get => {
                    let out = engine.get(req.key, now);
                    let lat = out.done_at.saturating_sub(now).0;
                    if op > cfg.warmup_ops {
                        latency.record(lat);
                    }
                    window_latency.record(lat);
                    if !out.hit {
                        engine.put(req.key, req.size, now);
                    }
                }
                RequestKind::Put => {
                    engine.put(req.key, req.size, now);
                }
            }
            if op % cfg.sample_every == 0 || op == cfg.ops {
                let s = engine.stats();
                wa_series.push((op, s.alwa()));
                let d_logical = s.logical_bytes - last.logical;
                let d_flash = s.flash_bytes_written - last.flash;
                wa_window_series.push((
                    op,
                    if d_logical == 0 {
                        1.0
                    } else {
                        d_flash as f64 / d_logical as f64
                    },
                ));
                let d_gets = s.gets - last.gets;
                let d_hits = s.hits - last.hits;
                let d_cand = s.candidate_reads - last.candidate_reads;
                miss_series.push((
                    op,
                    if d_gets == 0 {
                        0.0
                    } else {
                        1.0 - d_hits as f64 / d_gets as f64
                    },
                ));
                let minutes = now.as_secs_f64() / 60.0;
                write_rate_series.push((minutes, d_flash as f64 / (1024.0 * 1024.0)));
                // Closed loop: no admission queue, so service == total.
                let (p50, p99, p9999) = (
                    window_latency.p50(),
                    window_latency.p99(),
                    window_latency.p9999(),
                );
                latency_windows.push(LatencyWindow {
                    ops: op,
                    at: now,
                    p50,
                    p99,
                    p9999,
                    queue_p50: 0,
                    queue_p99: 0,
                    queue_p9999: 0,
                    service_p50: p50,
                    service_p99: p99,
                    service_p9999: p9999,
                    get_ops: d_gets,
                    set_reads: d_cand,
                });
                window_latency.reset();
                last = Snapshot {
                    logical: s.logical_bytes,
                    flash: s.flash_bytes_written,
                    gets: s.gets,
                    hits: s.hits,
                    candidate_reads: s.candidate_reads,
                };
            }
        }
        ReplayResult {
            stats: engine.stats(),
            latency,
            latency_windows,
            wa_series,
            wa_window_series,
            miss_series,
            write_rate_series,
            sim_end: now,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Snapshot {
    logical: u64,
    flash: u64,
    gets: u64,
    hits: u64,
    candidate_reads: u64,
}

/// The standard comparison geometry: 4 KB pages, 1 MB zones, 8 dies.
///
/// # Panics
///
/// Panics if `flash_mb == 0`.
pub fn standard_geometry(flash_mb: u32) -> Geometry {
    assert!(flash_mb > 0, "flash size must be positive");
    Geometry::new(4096, 256, flash_mb, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_baselines::{LogCache, LogCacheConfig, SetCache, SetCacheConfig};
    use nemo_flash::LatencyModel;
    use nemo_trace::TraceConfig;

    fn trace(scale: f64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig::twitter_merged(scale))
    }

    #[test]
    fn replay_collects_all_series() {
        let mut engine = LogCache::new(LogCacheConfig {
            geometry: standard_geometry(16),
            latency: LatencyModel::default(),
        });
        let mut t = trace(0.0002);
        let r = Replay::new(ReplayConfig::quick(10_000)).run(&mut engine, &mut t);
        assert_eq!(r.wa_series.len(), 20);
        assert_eq!(r.miss_series.len(), 20);
        assert_eq!(r.latency_windows.len(), 20);
        for w in &r.latency_windows {
            // Closed loop: no admission queueing; service time is total.
            assert_eq!(w.queue_p99, 0);
            assert_eq!(w.service_p99, w.p99);
        }
        assert!(r.sim_end > Nanos::ZERO);
        assert!(r.stats.gets + r.stats.puts >= 10_000);
    }

    #[test]
    fn miss_ratio_decreases_as_cache_warms() {
        let mut engine = LogCache::new(LogCacheConfig {
            geometry: standard_geometry(32),
            latency: LatencyModel::zero(),
        });
        let mut t = trace(0.0001);
        let r = Replay::new(ReplayConfig::quick(60_000)).run(&mut engine, &mut t);
        let early = r.miss_series[0].1;
        let late = r.miss_series.last().expect("samples").1;
        assert!(
            late < early,
            "cache should warm up: early {early}, late {late}"
        );
    }

    #[test]
    fn set_cache_wa_exceeds_log_cache_wa() {
        let geom = standard_geometry(16);
        let mut log = LogCache::new(LogCacheConfig {
            geometry: geom,
            latency: LatencyModel::zero(),
        });
        let mut set = SetCache::new(SetCacheConfig {
            geometry: geom,
            latency: LatencyModel::zero(),
            op_ratio: 0.5,
            bloom_bits_per_object: 4.0,
        });
        let cfg = ReplayConfig::quick(30_000);
        let rl = Replay::new(cfg.clone()).run(&mut log, &mut trace(0.0002));
        let rs = Replay::new(cfg).run(&mut set, &mut trace(0.0002));
        assert!(
            rs.stats.alwa() > 5.0 * rl.stats.alwa(),
            "set ({}) must dwarf log ({})",
            rs.stats.alwa(),
            rl.stats.alwa()
        );
    }

    #[test]
    fn latency_is_nonzero_under_real_model() {
        let mut engine = LogCache::new(LogCacheConfig {
            geometry: standard_geometry(16),
            latency: LatencyModel::default(),
        });
        let mut t = trace(0.0002);
        let r = Replay::new(ReplayConfig::quick(30_000)).run(&mut engine, &mut t);
        // Flash-hit reads take ≥ 70 µs; the aggregate histogram must show
        // flash-scale latencies somewhere past the median.
        assert!(r.latency.percentile(0.99) >= 70_000);
    }
}
