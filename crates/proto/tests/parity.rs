//! Wire-vs-in-process parity: the same trace driven once through the
//! TCP server and once through the `Dispatcher` directly, on fleets
//! built identically, must produce **identical** aggregate results —
//! hit ratio, op counts, ALWA/DLWA, per-shard engine stats, and the
//! modeled devices' stats.
//!
//! Why this must hold: engine aggregates are functions of the per-shard
//! command sequence only (the service layer's determinism contract —
//! its test suite proves aggregates are independent of timestamps,
//! queue depths and thread interleavings). A single strictly ordered
//! connection preserves the global request order, the server's virtual
//! clock stamps operations exactly like the in-process driver, and both
//! sides route keys with the same hash — so every shard sees the same
//! commands in the same order with the same stamps, and everything
//! downstream is bit-equal. A parity failure therefore isolates a bug
//! in the wire layer: parsing, key mapping, fill semantics, or dropped
//! operations.

use nemo_core::{Nemo, NemoConfig};
use nemo_flash::{AnyFlash, Geometry, Nanos, ZonedFlash};
use nemo_proto::wire::{parse_response, Response, ResponseOutcome};
use nemo_proto::{ClockMode, Limits, Server, ServerConfig, ServerReport};
use nemo_service::{Completion, CompletionKind, DeviceBackend, ShardedCacheBuilder, ShardedReport};
use nemo_trace::{RequestKind, TraceConfig, TraceGenerator};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;

const FLASH_MB: u32 = 16;
const SHARDS: usize = 2;
const OPS: u64 = 6_000;
const GAP: u64 = 10_000; // 100k req/s of virtual time

fn nemo_config() -> NemoConfig {
    let mut cfg = NemoConfig::new(Geometry::new(4096, 256, FLASH_MB, 8));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    cfg.index_group_sgs = 8;
    cfg
}

fn trace() -> TraceGenerator {
    TraceGenerator::new(TraceConfig::twitter_merged(
        FLASH_MB as f64 * 6.0 / 337_848.0,
    ))
}

fn build_fleet() -> nemo_service::ShardedCache<Nemo<AnyFlash>> {
    ShardedCacheBuilder::new(SHARDS)
        .spawn(nemo_config().factory_on(DeviceBackend::Modeled.device_factory("parity")))
}

/// The wire form of a trace key, and the `set` value length that makes
/// the engine-visible size equal the trace size.
fn wire_parts(key: u64, size: u32) -> (Vec<u8>, usize) {
    let kb = key.to_string().into_bytes();
    let vlen = (size as usize).saturating_sub(kb.len()).max(1);
    (kb, vlen)
}

/// Drives the trace through a TCP connection, strictly ordered
/// (closed loop): get → await reply → fill on miss → await STORED.
/// Returns (server report, client-observed hits, engine ops issued).
fn run_wire() -> (ServerReport<Nemo<AnyFlash>>, u64, u64) {
    let server = Server::start(
        build_fleet(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 1,
            limits: Limits::default(),
            clock: ClockMode::Virtual { gap: GAP },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let lim = Limits::default();
    let mut buf = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    // Reads one complete response frame, blocking as needed.
    let mut next_frame = |stream: &mut TcpStream, buf: &mut Vec<u8>| -> (String, bool) {
        loop {
            match parse_response(buf, &lim) {
                ResponseOutcome::Resp(r, n) => {
                    let label = match r {
                        Response::Value { .. } => "VALUE",
                        Response::End => "END",
                        Response::Stored => "STORED",
                        other => panic!("unexpected response {other:?}"),
                    };
                    buf.drain(..n);
                    return (label.to_string(), true);
                }
                ResponseOutcome::Incomplete => {
                    let n = stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed mid-run");
                    buf.extend_from_slice(&chunk[..n]);
                }
                ResponseOutcome::Garbled(_) => panic!("garbled response"),
            }
        }
    };

    let mut gen = trace();
    let mut hits = 0u64;
    let mut engine_ops = 0u64;
    let send_set = |stream: &mut TcpStream, kb: &[u8], vlen: usize| {
        let mut msg = Vec::with_capacity(vlen + 48);
        msg.extend_from_slice(b"set ");
        msg.extend_from_slice(kb);
        msg.extend_from_slice(format!(" 0 0 {vlen}\r\n").as_bytes());
        msg.extend(std::iter::repeat(0x5au8).take(vlen));
        msg.extend_from_slice(b"\r\n");
        stream.write_all(&msg).expect("write set");
    };
    for _ in 0..OPS {
        let r = gen.next_request();
        let (kb, vlen) = wire_parts(r.key, r.size);
        match r.kind {
            RequestKind::Get => {
                let mut msg = Vec::with_capacity(kb.len() + 8);
                msg.extend_from_slice(b"get ");
                msg.extend_from_slice(&kb);
                msg.extend_from_slice(b"\r\n");
                stream.write_all(&msg).expect("write get");
                engine_ops += 1;
                let (first, _) = next_frame(&mut stream, &mut buf);
                if first == "VALUE" {
                    hits += 1;
                    let (end, _) = next_frame(&mut stream, &mut buf);
                    assert_eq!(end, "END");
                } else {
                    assert_eq!(first, "END");
                    // Demand fill, exactly like the in-process driver.
                    send_set(&mut stream, &kb, vlen);
                    engine_ops += 1;
                    let (stored, _) = next_frame(&mut stream, &mut buf);
                    assert_eq!(stored, "STORED");
                }
            }
            RequestKind::Put => {
                send_set(&mut stream, &kb, vlen);
                engine_ops += 1;
                let (stored, _) = next_frame(&mut stream, &mut buf);
                assert_eq!(stored, "STORED");
            }
        }
    }
    drop(stream);
    // finish() joins the connection worker (it sees the EOF) before
    // draining the fleet.
    (server.finish(), hits, engine_ops)
}

/// The same trace through the `Dispatcher`, mirroring the server's
/// per-command behaviour exactly: lookups never fill; misses are
/// followed by a put of the same wire-derived size; the virtual clock
/// advances one gap per engine op.
fn run_in_process() -> (ShardedReport<Nemo<AnyFlash>>, u64, u64) {
    let cache = build_fleet();
    let dispatcher = cache.dispatcher();
    let (tx, rx) = channel::<Completion>();
    let mut gen = trace();
    let mut hits = 0u64;
    let mut ticks = 0u64;
    let mut seq = 0u64;
    let mut next_stamp = || {
        ticks += GAP;
        Nanos(ticks)
    };
    for _ in 0..OPS {
        let r = gen.next_request();
        let (kb, vlen) = wire_parts(r.key, r.size);
        let wire_size = (kb.len() + vlen) as u32;
        match r.kind {
            RequestKind::Get => {
                seq += 1;
                dispatcher.dispatch_lookup(r.key, next_stamp(), seq, &tx);
                let c = rx.recv().expect("completion");
                let hit = matches!(c.kind, CompletionKind::Get { hit: true, .. });
                if hit {
                    hits += 1;
                } else {
                    seq += 1;
                    dispatcher.dispatch_put(r.key, wire_size, next_stamp(), seq, &tx);
                    rx.recv().expect("completion");
                }
            }
            RequestKind::Put => {
                seq += 1;
                dispatcher.dispatch_put(r.key, wire_size, next_stamp(), seq, &tx);
                rx.recv().expect("completion");
            }
        }
    }
    // The shard workers only exit once every command sender is gone,
    // and the dispatcher holds clones of them.
    drop(dispatcher);
    // The server drains at its clock's next tick; mirror that.
    let report = cache.finish(Nanos(ticks + GAP));
    (report, hits, seq)
}

#[test]
fn wire_replay_matches_in_process_replay() {
    let (wire, wire_hits, wire_ops) = run_wire();
    let (inproc, inproc_hits, inproc_ops) = run_in_process();

    // Same number of engine operations were issued at all.
    assert_eq!(wire_ops, inproc_ops, "engine op counts diverged");
    assert_eq!(wire_hits, inproc_hits, "client-observed hits diverged");

    // The server's own wire accounting agrees with the client's.
    assert_eq!(wire.proto.wire_hits, wire_hits);
    assert_eq!(
        wire.proto.get_keys,
        wire.proto.wire_hits + wire.proto.wire_misses
    );
    assert_eq!(wire.proto.protocol_errors, 0);
    assert_eq!(wire.proto.fatal_errors, 0);

    // Aggregate engine stats: identical, field for field (gets, puts,
    // hits, objects/bytes written, flash writes → ALWA/DLWA, ...).
    assert_eq!(
        wire.report.stats, inproc.stats,
        "aggregate EngineStats diverged"
    );
    assert_eq!(
        wire.report.stats.alwa().to_bits(),
        inproc.stats.alwa().to_bits(),
        "ALWA diverged"
    );
    assert_eq!(
        wire.report.stats.total_wa().to_bits(),
        inproc.stats.total_wa().to_bits(),
        "total WA diverged"
    );
    assert_eq!(
        wire.report.stats.miss_ratio().to_bits(),
        inproc.stats.miss_ratio().to_bits(),
        "hit ratio diverged"
    );

    // Per-shard: the same commands reached the same shards.
    assert_eq!(
        wire.report.per_shard, inproc.per_shard,
        "per-shard stats diverged"
    );

    // Device stats, per shard. Both sides run modeled devices on the
    // same virtual clock, so even the time-valued fields (busy time)
    // must agree bit-for-bit.
    let wire_dev: Vec<_> = wire
        .report
        .engines
        .iter()
        .map(|e| e.device().stats())
        .collect();
    let inproc_dev: Vec<_> = inproc.engines.iter().map(|e| e.device().stats()).collect();
    assert_eq!(wire_dev, inproc_dev, "DeviceStats diverged");

    // Metadata side table: exactly the engines' live objects minus the
    // evicted ones whose meta a later miss garbage-collected; at
    // minimum it never exceeds insertions, and the engines agree there
    // were real hits (the trace is Zipfian).
    assert!(wire_hits > 0, "degenerate run: no hits at all");
    assert!(wire.report.stats.hits == wire_hits);
}

/// Sanity check on the sanity checker: a *different* workload must
/// change the aggregates (the parity test can't pass vacuously).
#[test]
fn parity_is_not_vacuous() {
    let (inproc_a, _, _) = run_in_process();
    let cache = build_fleet();
    let dispatcher = cache.dispatcher();
    let (tx, rx) = channel::<Completion>();
    for seq in 1..=100u64 {
        dispatcher.dispatch_put(seq, 200, Nanos(seq * GAP), seq, &tx);
        rx.recv().expect("completion");
    }
    drop(dispatcher);
    let report = cache.finish(Nanos(101 * GAP));
    assert_ne!(report.stats, inproc_a.stats);
}
