//! Property battery for the request/response parsers.
//!
//! Three families, per the parser's contract:
//!
//! 1. **Robustness** — arbitrary bytes (uniform and protocol-biased)
//!    never panic the parser, never over-read (`consumed ≤ buf.len()`),
//!    and always make progress (`consumed > 0` for any non-`Incomplete`,
//!    non-`Fatal` outcome), so a feed loop terminates.
//! 2. **Roundtrip** — randomly generated valid commands encode →
//!    parse → re-encode byte-identically (encoding is canonical).
//! 3. **Split resume** — a pipelined script parses to the same command
//!    sequence no matter where TCP segments it: exhaustively at every
//!    single split point, and randomly into many chunks.
//!
//! The `#[ignore]`d variants are the deep generative sweeps the
//! scheduled CI job runs (same properties, orders of magnitude more
//! cases).

use nemo_proto::wire::{encode_command, parse_response, ResponseOutcome};
use nemo_proto::{parse_command, Command, Limits, ParseOutcome, SetCmd};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits::default()
}

/// Drains `buf` through the parser, panicking on any safety violation;
/// returns the canonical re-encoding of every parsed command and the
/// count of (commands, errors).
fn drain_commands(buf: &[u8]) -> (Vec<u8>, usize, usize) {
    let lim = limits();
    let mut reencoded = Vec::new();
    let mut off = 0;
    let (mut cmds, mut errs) = (0, 0);
    loop {
        let rest = &buf[off..];
        match parse_command(rest, &lim) {
            ParseOutcome::Cmd(cmd, consumed) => {
                assert!(
                    consumed <= rest.len(),
                    "over-read: {consumed} > {}",
                    rest.len()
                );
                assert!(consumed > 0, "no progress on Cmd");
                encode_command(&mut reencoded, &cmd);
                off += consumed;
                cmds += 1;
            }
            ParseOutcome::Error(_, consumed) => {
                assert!(
                    consumed <= rest.len(),
                    "over-read: {consumed} > {}",
                    rest.len()
                );
                assert!(consumed > 0, "no progress on Error");
                off += consumed;
                errs += 1;
            }
            ParseOutcome::Incomplete | ParseOutcome::Fatal(_) => break,
        }
    }
    (reencoded, cmds, errs)
}

/// A protocol-biased byte soup: verbs, numbers, keys, CRLFs and raw
/// noise glued together. Much likelier than uniform bytes to form
/// almost-valid frames that stress deep parser paths.
fn biased_soup(rng_bytes: &[u8]) -> Vec<u8> {
    const FRAGMENTS: &[&[u8]] = &[
        b"get ",
        b"gets ",
        b"set ",
        b"version",
        b"quit",
        b"key",
        b"0",
        b"12345",
        b" ",
        b"\r\n",
        b"\r",
        b"\n",
        b"noreply",
        b"-1",
        b"99999999999999999999999",
        b"\x00\x7f",
        b"abc",
    ];
    let mut out = Vec::new();
    for &b in rng_bytes {
        let i = (b as usize) % (FRAGMENTS.len() + 2);
        match FRAGMENTS.get(i) {
            Some(f) => out.extend_from_slice(f),
            None => out.push(b),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Uniform random bytes: no panic, no over-read, guaranteed progress.
    #[test]
    fn arbitrary_bytes_are_safe(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        drain_commands(&buf);
    }

    /// Protocol-biased byte soup: same safety properties on inputs that
    /// reach much deeper into the grammar.
    #[test]
    fn biased_bytes_are_safe(seed in prop::collection::vec(any::<u8>(), 0..64)) {
        drain_commands(&biased_soup(&seed));
    }

    /// The response parser has the same safety contract (the load
    /// generator feeds it whatever the socket hands back).
    #[test]
    fn arbitrary_bytes_are_safe_for_responses(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        let lim = limits();
        let mut off = 0;
        loop {
            let rest = &buf[off..];
            match parse_response(rest, &lim) {
                ResponseOutcome::Resp(_, n) | ResponseOutcome::Garbled(n) => {
                    prop_assert!(n <= rest.len(), "over-read");
                    prop_assert!(n > 0, "no progress");
                    off += n;
                }
                ResponseOutcome::Incomplete => break,
            }
        }
    }
}

/// A random valid key over the legal alphabet (no whitespace/control).
fn gen_key(seed: &[u8]) -> Vec<u8> {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./:";
    seed.iter()
        .map(|&b| ALPHA[b as usize % ALPHA.len()])
        .collect()
}

/// Builds one random valid command's canonical encoding from raw
/// sampled material; returns the encoded bytes.
fn gen_command(kind: u8, key_seed: &[u8], nums: (u32, i64), data: &[u8], noreply: bool) -> Vec<u8> {
    let key = gen_key(if key_seed.is_empty() { b"k" } else { key_seed });
    let mut out = Vec::new();
    match kind % 5 {
        0 => {
            out.extend_from_slice(format!("get {}\r\n", String::from_utf8(key).unwrap()).as_bytes())
        }
        1 => out
            .extend_from_slice(format!("gets {}\r\n", String::from_utf8(key).unwrap()).as_bytes()),
        2 => {
            let cmd = SetCmd {
                key: &key,
                flags: nums.0,
                exptime: nums.1,
                data,
                noreply,
            };
            nemo_proto::encode_set(&mut out, &cmd);
        }
        3 => out.extend_from_slice(b"version\r\n"),
        _ => out.extend_from_slice(b"quit\r\n"),
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → parse → re-encode is byte-identical for valid commands
    /// (including values containing CRLF and every command kind).
    #[test]
    fn valid_commands_roundtrip(
        kind in any::<u8>(),
        key_seed in prop::collection::vec(any::<u8>(), 1..40),
        flags in any::<u32>(),
        exptime in -1000i64..100_000,
        data in prop::collection::vec(any::<u8>(), 0..300),
        noreply in any::<u8>(),
    ) {
        let encoded = gen_command(kind, &key_seed, (flags, exptime), &data, noreply % 2 == 0);
        let (reencoded, cmds, errs) = drain_commands(&encoded);
        prop_assert_eq!(errs, 0, "valid command parsed as error");
        prop_assert_eq!(cmds, 1);
        prop_assert_eq!(reencoded, encoded);
    }

    /// A random multi-command pipeline split into random chunks parses
    /// to the same byte-identical command sequence as the unsplit
    /// buffer — the parser resumes cleanly at arbitrary TCP boundaries.
    #[test]
    fn random_splits_resume(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        splits in prop::collection::vec(any::<u16>(), 1..6),
        data in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let mut script = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            // Vary keys/fields per command off the kind byte.
            let key_seed = [kind, i as u8, 7];
            script.extend(gen_command(kind, &key_seed, (kind as u32, i as i64), &data, kind % 3 == 0));
        }
        let (want, want_cmds, _) = drain_commands(&script);

        // Cut the script at the sampled offsets.
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s as usize % (script.len() + 1)).collect();
        cuts.sort_unstable();
        let mut got = Vec::new();
        let mut got_cmds = 0;
        let mut pending: Vec<u8> = Vec::new();
        let mut prev = 0;
        let lim = limits();
        for end in cuts.into_iter().chain([script.len()]) {
            pending.extend_from_slice(&script[prev..end.max(prev)]);
            prev = end.max(prev);
            // Parse whatever is complete so far, keep the rest buffered.
            let mut off = 0;
            loop {
                match parse_command(&pending[off..], &lim) {
                    ParseOutcome::Cmd(cmd, n) => {
                        encode_command(&mut got, &cmd);
                        got_cmds += 1;
                        off += n;
                    }
                    ParseOutcome::Error(_, n) => off += n,
                    ParseOutcome::Incomplete | ParseOutcome::Fatal(_) => break,
                }
            }
            pending.drain(..off);
        }
        prop_assert_eq!(got_cmds, want_cmds);
        prop_assert_eq!(got, want);
    }
}

/// Exhaustive single-split sweep over a fixed pipelined script that
/// exercises every command kind, multi-key gets, noreply sets and a
/// CRLF-bearing value: for every possible boundary, parsing
/// prefix-then-rest yields the identical command sequence.
#[test]
fn every_split_point_resumes() {
    let script: &[u8] = b"get alpha\r\n\
        gets k1 k2 k3\r\n\
        set store 7 0 6\r\nab\r\ncd\r\n\
        set tiny 0 -1 1 noreply\r\nZ\r\n\
        version\r\n\
        get zz9\r\n\
        quit\r\n";
    let (want, want_cmds, want_errs) = drain_commands(script);
    assert_eq!(want_cmds, 7);
    assert_eq!(want_errs, 0);
    let lim = limits();
    for split in 0..=script.len() {
        let mut got = Vec::new();
        let mut got_cmds = 0;
        let mut pending = Vec::new();
        for chunk in [&script[..split], &script[split..]] {
            pending.extend_from_slice(chunk);
            let mut off = 0;
            loop {
                match parse_command(&pending[off..], &lim) {
                    ParseOutcome::Cmd(cmd, n) => {
                        encode_command(&mut got, &cmd);
                        got_cmds += 1;
                        off += n;
                    }
                    ParseOutcome::Error(_, n) => off += n,
                    ParseOutcome::Incomplete | ParseOutcome::Fatal(_) => break,
                }
            }
            pending.drain(..off);
        }
        assert_eq!(got_cmds, want_cmds, "split at {split}");
        assert_eq!(got, want, "split at {split}");
    }
}

/// Recoverable errors leave the parser aligned on the next frame: an
/// error line followed by a valid command parses the valid command.
#[test]
fn errors_recover_to_next_frame() {
    let script = b"bogus cmd\r\nget ok\r\n";
    let (reencoded, cmds, errs) = drain_commands(script);
    assert_eq!((cmds, errs), (1, 1));
    assert_eq!(reencoded, b"get ok\r\n");
}

// ---------------------------------------------------------------------
// Deep generative sweeps — the scheduled CI job runs these with
// `cargo test -- --ignored`; too slow for the per-push gate.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20_000))]

    /// Deep robustness sweep: uniform bytes.
    #[test]
    #[ignore = "deep generative sweep; run via the scheduled CI job"]
    fn deep_arbitrary_bytes_are_safe(buf in prop::collection::vec(any::<u8>(), 0..1024)) {
        drain_commands(&buf);
    }

    /// Deep robustness sweep: protocol-biased soup.
    #[test]
    #[ignore = "deep generative sweep; run via the scheduled CI job"]
    fn deep_biased_bytes_are_safe(seed in prop::collection::vec(any::<u8>(), 0..128)) {
        drain_commands(&biased_soup(&seed));
    }

    /// Deep roundtrip sweep with larger values.
    #[test]
    #[ignore = "deep generative sweep; run via the scheduled CI job"]
    fn deep_valid_commands_roundtrip(
        kind in any::<u8>(),
        key_seed in prop::collection::vec(any::<u8>(), 1..250),
        flags in any::<u32>(),
        exptime in -1_000_000i64..10_000_000,
        data in prop::collection::vec(any::<u8>(), 0..4096),
        noreply in any::<u8>(),
    ) {
        let encoded = gen_command(kind, &key_seed, (flags, exptime), &data, noreply % 2 == 0);
        let (reencoded, cmds, errs) = drain_commands(&encoded);
        prop_assert_eq!(errs, 0);
        prop_assert_eq!(cmds, 1);
        prop_assert_eq!(reencoded, encoded);
    }
}

/// Deep exhaustive split sweep: every split point of a longer script
/// (also exercised pairwise: two simultaneous boundaries).
#[test]
#[ignore = "deep generative sweep; run via the scheduled CI job"]
fn deep_every_split_pair_resumes() {
    let script: &[u8] =
        b"set a 1 0 3\r\nxyz\r\nget a\r\ngets a b\r\nset b 2 -1 4 noreply\r\nwx\r\n\r\nversion\r\n";
    let (want, want_cmds, _) = drain_commands(script);
    let lim = limits();
    for s1 in 0..=script.len() {
        for s2 in s1..=script.len() {
            let mut got = Vec::new();
            let mut got_cmds = 0;
            let mut pending = Vec::new();
            for chunk in [&script[..s1], &script[s1..s2], &script[s2..]] {
                pending.extend_from_slice(chunk);
                let mut off = 0;
                loop {
                    match parse_command(&pending[off..], &lim) {
                        ParseOutcome::Cmd(cmd, n) => {
                            encode_command(&mut got, &cmd);
                            got_cmds += 1;
                            off += n;
                        }
                        ParseOutcome::Error(_, n) => off += n,
                        ParseOutcome::Incomplete | ParseOutcome::Fatal(_) => break,
                    }
                }
                pending.drain(..off);
            }
            assert_eq!(got_cmds, want_cmds, "splits at {s1},{s2}");
            assert_eq!(got, want, "splits at {s1},{s2}");
        }
    }
}

/// Fatal outcomes never lie about recoverability, and `Command::Get`'s
/// key iterator agrees with its count (used for dispatch sizing).
#[test]
fn fatal_is_fatal_and_counts_agree() {
    let lim = limits();
    match parse_command(b"set k 0 0 99999999\r\n", &lim) {
        ParseOutcome::Fatal(e) => assert!(!e.recoverable()),
        other => panic!("{other:?}"),
    }
    match parse_command(b"gets one two three\r\n", &lim) {
        ParseOutcome::Cmd(Command::Get { keys, .. }, _) => {
            assert_eq!(keys.count(), keys.iter().count());
            assert_eq!(keys.count(), 3);
        }
        other => panic!("{other:?}"),
    }
}
