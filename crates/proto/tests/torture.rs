//! Malformed-input torture: raw byte streams a well-behaved client
//! never sends — oversized keys and values, unknown verbs, truncated
//! `set` bodies, unbounded lines, mid-command disconnects — must get
//! the documented `ERROR`/`CLIENT_ERROR`/`SERVER_ERROR` replies (or a
//! close, when the next frame boundary is unknowable) without wedging
//! a connection worker, leaking an in-flight engine op, or poisoning
//! the server for the *next* connection.

use nemo_core::{Nemo, NemoConfig};
use nemo_flash::{AnyFlash, Geometry};
use nemo_proto::{map_key, synth_value, ClockMode, Limits, Server, ServerConfig};
use nemo_service::{DeviceBackend, ShardedCacheBuilder};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> Server<Nemo<AnyFlash>> {
    let mut cfg = NemoConfig::new(Geometry::new(4096, 256, 16, 8));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    cfg.index_group_sgs = 8;
    let cache = ShardedCacheBuilder::new(2)
        .spawn(cfg.factory_on(DeviceBackend::Modeled.device_factory("torture")));
    Server::start(
        cache,
        ServerConfig {
            conn_workers: 2,
            clock: ClockMode::Wall,
            ..ServerConfig::default()
        },
    )
    .expect("start server")
}

fn connect(server: &Server<Nemo<AnyFlash>>) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    s
}

/// Reads until `want` has arrived (or the read times out / EOFs, which
/// fails the assertion with whatever did arrive).
fn expect_reply(stream: &mut TcpStream, want: &[u8]) {
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    while got.len() < want.len() {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&chunk[..n]),
            Err(e) => panic!(
                "read failed ({e}) waiting for {:?}; got {:?}",
                String::from_utf8_lossy(want),
                String::from_utf8_lossy(&got)
            ),
        }
    }
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(want),
        "unexpected reply"
    );
}

/// What the server sends for a hit on `key` whose stored value length
/// is `vlen`: the modeled store keeps sizes, not bytes, so the VALUE
/// body is the deterministic synthesized pattern for the engine key.
fn expected_value_block(key: &str, flags: u32, vlen: usize) -> Vec<u8> {
    let mut want = format!("VALUE {key} {flags} {vlen}\r\n").into_bytes();
    synth_value(&mut want, map_key(key.as_bytes()), vlen);
    want.extend_from_slice(b"\r\nEND\r\n");
    want
}

/// Reads to EOF, asserting the connection was closed by the server and
/// that everything sent first equals `want`.
fn expect_reply_then_close(stream: &mut TcpStream, want: &str) {
    let want = want.as_bytes();
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&chunk[..n]),
            Err(e) => panic!(
                "read failed ({e}) waiting for close; got {:?}",
                String::from_utf8_lossy(&got)
            ),
        }
    }
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(want),
        "unexpected pre-close bytes"
    );
}

/// A full set+get round trip — the "is the server still alive and
/// correct" probe run after every abuse.
fn probe_roundtrip(server: &Server<Nemo<AnyFlash>>, key: &str, val: &[u8]) {
    let mut s = connect(server);
    let mut msg = format!("set {key} 7 0 {}\r\n", val.len()).into_bytes();
    msg.extend_from_slice(val);
    msg.extend_from_slice(b"\r\n");
    s.write_all(&msg).expect("write set");
    expect_reply(&mut s, b"STORED\r\n");
    s.write_all(format!("get {key}\r\n").as_bytes())
        .expect("write get");
    expect_reply(&mut s, &expected_value_block(key, 7, val.len()));
    s.write_all(b"quit\r\n").expect("write quit");
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "bytes after quit: {rest:?}");
}

#[test]
fn recoverable_garbage_gets_errors_and_the_connection_survives() {
    let server = start_server();
    let mut s = connect(&server);

    // Unknown verb: ERROR, keep going.
    s.write_all(b"frobnicate now\r\n").expect("write");
    expect_reply(&mut s, b"ERROR\r\n");

    // get with no keys: malformed but line-delimited, keep going.
    s.write_all(b"get\r\n").expect("write");
    expect_reply(&mut s, b"CLIENT_ERROR bad command line format\r\n");

    // Oversized key: recoverable (the line was delimited).
    let fat_key = "k".repeat(Limits::default().max_key_len + 1);
    s.write_all(format!("get {fat_key}\r\n").as_bytes())
        .expect("write");
    expect_reply(
        &mut s,
        b"CLIENT_ERROR bad command line format: key too long\r\n",
    );

    // set with a garbage byte count: recoverable.
    s.write_all(b"set k 0 0 banana\r\n").expect("write");
    expect_reply(&mut s, b"CLIENT_ERROR bad command line format\r\n");

    // The same connection still does real work afterwards.
    s.write_all(b"set alive 0 0 2\r\nok\r\n").expect("write");
    expect_reply(&mut s, b"STORED\r\n");
    s.write_all(b"get alive\r\n").expect("write");
    expect_reply(&mut s, &expected_value_block("alive", 0, 2));
    drop(s);

    probe_roundtrip(&server, "post-recoverable", b"fine");
    let report = server.finish();
    assert_eq!(report.proto.protocol_errors, 4);
    assert_eq!(report.proto.fatal_errors, 0);
    assert_eq!(report.proto.connections, report.proto.connections_closed);
}

#[test]
fn fatal_garbage_closes_the_connection_but_not_the_server() {
    let server = start_server();

    // Oversized value: the body length is known but unacceptable;
    // draining it is unbounded buffering, so the server replies and
    // closes.
    let mut s = connect(&server);
    let huge = Limits::default().max_value_len + 1;
    s.write_all(format!("set k 0 0 {huge}\r\n").as_bytes())
        .expect("write");
    expect_reply_then_close(&mut s, "SERVER_ERROR object too large for cache\r\n");

    // A line that never ends: close once it exceeds the line cap.
    let mut s = connect(&server);
    s.write_all(&vec![b'x'; Limits::default().max_line_len + 100])
        .expect("write");
    expect_reply_then_close(&mut s, "CLIENT_ERROR line too long\r\n");

    // A set whose data chunk is not CRLF-terminated: framing is lost.
    let mut s = connect(&server);
    s.write_all(b"set k 0 0 4\r\nabcdXY").expect("write");
    expect_reply_then_close(&mut s, "CLIENT_ERROR bad data chunk\r\n");

    probe_roundtrip(&server, "post-fatal", b"fine");
    let report = server.finish();
    assert_eq!(report.proto.fatal_errors, 3);
    assert_eq!(report.proto.connections, report.proto.connections_closed);
    // The probe's set+get reached the engines; the garbage did not.
    assert_eq!(report.report.stats.gets, 1);
    assert_eq!(report.report.stats.hits, 1);
}

#[test]
fn mid_command_disconnects_do_not_wedge_workers() {
    let server = start_server();

    // Truncated set body, then vanish.
    let mut s = connect(&server);
    s.write_all(b"set trunc 0 0 1000\r\npartial data")
        .expect("write");
    drop(s);

    // Vanish mid command line.
    let mut s = connect(&server);
    s.write_all(b"get half-a-comm").expect("write");
    drop(s);

    // Vanish with a pipelined burst in flight: every op the server
    // parsed must complete against the engines even though nobody is
    // left to read the replies.
    let mut s = connect(&server);
    let mut burst = Vec::new();
    for i in 0..64 {
        burst.extend_from_slice(format!("set burst{i} 0 0 3\r\nabc\r\n").as_bytes());
        burst.extend_from_slice(format!("get burst{i}\r\n").as_bytes());
    }
    s.write_all(&burst).expect("write");
    drop(s);

    // With 2 workers and 3 abusive connections served to completion,
    // a wedged worker would leave the probe stuck in the accept queue
    // (its 5s read timeout fails the test).
    probe_roundtrip(&server, "post-disconnect", b"fine");
    let report = server.finish();
    assert_eq!(report.proto.connections, report.proto.connections_closed);
    assert_eq!(report.proto.protocol_errors, 0);
    // No half-applied burst: sets and gets that parsed fully ran.
    assert!(report.report.stats.puts >= 1, "probe put missing");
}
