//! Wire-key mapping and the object-metadata side table.
//!
//! The cache engines under this front-end are *placement simulators*:
//! they track object keys (`u64`) and sizes, not payload bytes. The
//! wire layer therefore (a) maps arbitrary byte-string keys onto the
//! engines' `u64` key space, and (b) keeps a small side table of
//! wire-visible metadata — flags, value length, cas unique — so a get
//! hit can be answered with a correctly framed `VALUE` block. The value
//! bytes themselves are synthesized deterministically from the key;
//! the engine, not this table, remains the source of truth for
//! presence: a hit with no metadata (never expected in practice)
//! answers with a zero-length value, and metadata of evicted objects is
//! garbage-collected when the engine reports the miss.

use nemo_service::shard_of;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maps wire key bytes to the engines' `u64` key space.
///
/// Keys that are canonical decimal `u64`s (no leading zeros, in range)
/// map to their numeric value — so a load generator that encodes
/// trace keys in decimal round-trips them exactly, which is what makes
/// the wire-vs-in-process parity tests byte-identical. Anything else
/// maps through FNV-1a. The two ranges can collide in principle;
/// callers wanting collision-freedom should stick to one key style per
/// deployment, as the parity harness does.
pub fn map_key(key: &[u8]) -> u64 {
    if !key.is_empty()
        && key.len() <= 20
        && key.iter().all(|b| b.is_ascii_digit())
        && (key.len() == 1 || key[0] != b'0')
    {
        let mut v: u64 = 0;
        let mut ok = true;
        for &b in key {
            match v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
            {
                Some(next) => v = next,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return v;
        }
    }
    // FNV-1a 64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wire-visible metadata of one stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjMeta {
    /// Client-opaque flags from the `set`.
    pub flags: u32,
    /// Value length in bytes (the `set`'s data block).
    pub vlen: u32,
    /// cas unique, monotone across the server.
    pub cas: u64,
}

/// Sharded metadata side table. Sharded by the same routing hash as the
/// cache fleet, so contention mirrors the fleet's natural partitioning.
#[derive(Debug)]
pub struct MetaStore {
    shards: Vec<Mutex<HashMap<u64, ObjMeta>>>,
    cas_counter: AtomicU64,
}

impl MetaStore {
    /// A table with `shards` lock stripes (usually the fleet's shard
    /// count).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "meta store needs at least one stripe");
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            cas_counter: AtomicU64::new(0),
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<HashMap<u64, ObjMeta>> {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Records a set, assigning the next cas unique, and returns it.
    pub fn insert(&self, key: u64, flags: u32, vlen: u32) -> u64 {
        let cas = self.cas_counter.fetch_add(1, Ordering::Relaxed) + 1;
        self.stripe(key)
            .lock()
            .expect("meta stripe poisoned")
            .insert(key, ObjMeta { flags, vlen, cas });
        cas
    }

    /// Metadata for a key the engine reported as a hit.
    pub fn get(&self, key: u64) -> Option<ObjMeta> {
        self.stripe(key)
            .lock()
            .expect("meta stripe poisoned")
            .get(&key)
            .copied()
    }

    /// Garbage-collects metadata after the engine reported a miss (the
    /// object was evicted, so its wire metadata is dead).
    pub fn forget(&self, key: u64) {
        self.stripe(key)
            .lock()
            .expect("meta stripe poisoned")
            .remove(&key);
    }

    /// Live metadata entries across all stripes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("meta stripe poisoned").len())
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fills `out` with `len` bytes of the deterministic value pattern for
/// `key` — what the server returns in `VALUE` blocks. Clients never
/// validate payload contents (the engines store placements, not bytes),
/// but a deterministic pattern keeps responses reproducible for tests.
pub fn synth_value(out: &mut Vec<u8>, key: u64, len: usize) {
    let pattern = key.to_le_bytes();
    out.extend((0..len).map(|i| pattern[i % 8].wrapping_add((i / 8) as u8)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_keys_map_numerically() {
        assert_eq!(map_key(b"0"), 0);
        assert_eq!(map_key(b"42"), 42);
        assert_eq!(map_key(b"18446744073709551615"), u64::MAX);
    }

    #[test]
    fn non_canonical_decimal_hashes() {
        // Leading zero, overflow, and non-digit keys all take the hash
        // path — and none of them may collide with small numerics here.
        assert_ne!(map_key(b"042"), 42);
        assert_ne!(map_key(b"18446744073709551616"), 0);
        assert_ne!(map_key(b"alpha"), map_key(b"beta"));
        assert_eq!(map_key(b"alpha"), map_key(b"alpha"));
    }

    #[test]
    fn meta_store_roundtrip_and_gc() {
        let store = MetaStore::new(4);
        let cas1 = store.insert(7, 3, 100);
        let cas2 = store.insert(7, 4, 200);
        assert!(cas2 > cas1, "cas uniques are monotone");
        let meta = store.get(7).unwrap();
        assert_eq!((meta.flags, meta.vlen, meta.cas), (4, 200, cas2));
        store.forget(7);
        assert!(store.get(7).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn synth_value_is_deterministic_and_sized() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synth_value(&mut a, 99, 37);
        synth_value(&mut b, 99, 37);
        assert_eq!(a, b);
        assert_eq!(a.len(), 37);
        let mut c = Vec::new();
        synth_value(&mut c, 100, 37);
        assert_ne!(a, c, "different keys give different patterns");
    }
}
