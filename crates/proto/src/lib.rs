//! # nemo-proto — the memcached-text wire front-end
//!
//! Serves a [`nemo_service::ShardedCache`] over TCP speaking the
//! memcached text protocol (`get`/`gets`, `set`, `version`, `quit`),
//! using nothing beyond `std::net` — no async runtime. The design
//! mirrors the shard-per-core service layer it fronts:
//!
//! - **Parsing** ([`parser`]): a stateless, zero-copy incremental
//!   parser. One pure function over the connection buffer that yields a
//!   complete frame, asks for more bytes, or classifies an error as
//!   recoverable (reply and keep going) or fatal (reply and close).
//!   Statelessness is what makes resumption after arbitrary TCP segment
//!   splits trivial — and property-testable.
//! - **Connections** (`conn`, internal): a bounded pool of worker
//!   threads, one connection served at a time. Each read's worth of
//!   pipelined commands is dispatched to the shard fleet *before* any
//!   completion is awaited, then responses are written back in request
//!   order as one batched write.
//! - **Serving** ([`server`]): accept loop + worker pool with layered
//!   backpressure (accept queue → shard command queues → TCP flow
//!   control) and graceful drain on shutdown.
//! - **Keys and values** ([`store`]): the engines are placement
//!   simulators keyed by `u64`, so the wire layer maps byte-string keys
//!   (canonical-decimal or FNV-1a) and keeps flags/length/cas metadata
//!   in a striped side table; values are synthesized deterministically.
//! - **Client side** ([`wire`]): canonical encoders and a response
//!   parser with the same split-resume property, used by the network
//!   load generator and the test batteries.

pub mod parser;
pub mod server;
pub mod store;
pub mod wire;

mod conn;

pub use conn::{ClockMode, ServerClock};
pub use parser::{parse_command, Command, Keys, Limits, ParseOutcome, SetCmd, WireError};
pub use server::{Server, ServerConfig, ServerReport};
pub use store::{map_key, synth_value, MetaStore, ObjMeta};
pub use wire::{
    encode_command, encode_get, encode_set, encode_value, parse_response, Response, ResponseOutcome,
};
