//! Wire encoders (canonical request/response bytes) and the
//! client-side response parser used by the network load generator and
//! the test batteries.
//!
//! Encoding is canonical — single spaces, decimal numbers without
//! leading zeros — so `encode → parse → re-encode` is byte-identical,
//! which the property tests assert.

use crate::parser::{Command, Limits, SetCmd};

/// Appends a canonical `get`/`gets` request.
pub fn encode_get<'a>(out: &mut Vec<u8>, keys: impl IntoIterator<Item = &'a [u8]>, cas: bool) {
    out.extend_from_slice(if cas { b"gets" } else { b"get" });
    for key in keys {
        out.push(b' ');
        out.extend_from_slice(key);
    }
    out.extend_from_slice(b"\r\n");
}

/// Appends a canonical `set` request (header line plus data block).
pub fn encode_set(out: &mut Vec<u8>, cmd: &SetCmd<'_>) {
    out.extend_from_slice(b"set ");
    out.extend_from_slice(cmd.key);
    let mut header = format!(" {} {} {}", cmd.flags, cmd.exptime, cmd.data.len());
    if cmd.noreply {
        header.push_str(" noreply");
    }
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(cmd.data);
    out.extend_from_slice(b"\r\n");
}

/// Re-encodes any parsed command to its canonical bytes.
pub fn encode_command(out: &mut Vec<u8>, cmd: &Command<'_>) {
    match cmd {
        Command::Get { keys, cas } => encode_get(out, keys.iter(), *cas),
        Command::Set(set) => encode_set(out, set),
        Command::Version => out.extend_from_slice(b"version\r\n"),
        Command::Quit => out.extend_from_slice(b"quit\r\n"),
    }
}

/// Appends a `VALUE` block for one get hit. `cas` is present for
/// `gets` responses.
pub fn encode_value(out: &mut Vec<u8>, key: &[u8], flags: u32, cas: Option<u64>, data: &[u8]) {
    out.extend_from_slice(b"VALUE ");
    out.extend_from_slice(key);
    match cas {
        Some(cas) => out.extend_from_slice(format!(" {flags} {} {cas}\r\n", data.len()).as_bytes()),
        None => out.extend_from_slice(format!(" {flags} {}\r\n", data.len()).as_bytes()),
    }
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// One server response frame, as seen by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response<'a> {
    /// One `VALUE <key> <flags> <bytes> [<cas>]` block of a get reply.
    Value {
        /// The echoed key.
        key: &'a [u8],
        /// Stored flags.
        flags: u32,
        /// cas unique (only in `gets` replies).
        cas: Option<u64>,
        /// The value bytes.
        data: &'a [u8],
    },
    /// `END` — terminates a get reply.
    End,
    /// `STORED` — a successful set.
    Stored,
    /// `VERSION <string>`.
    Version(&'a [u8]),
    /// `ERROR` — unknown command.
    Error,
    /// `CLIENT_ERROR <message>`.
    ClientError(&'a [u8]),
    /// `SERVER_ERROR <message>`.
    ServerError(&'a [u8]),
}

/// Result of parsing one response frame from the front of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseOutcome<'a> {
    /// A complete response occupying the first `consumed` bytes.
    Resp(Response<'a>, usize),
    /// Need more bytes.
    Incomplete,
    /// The server sent something unintelligible; `consumed` skips it.
    Garbled(usize),
}

/// Parses one response frame from the front of `buf`. Stateless and
/// zero-copy, like the request parser: resume after any split point by
/// appending bytes and calling again.
pub fn parse_response<'a>(buf: &'a [u8], limits: &Limits) -> ResponseOutcome<'a> {
    let pos = match buf
        .windows(2)
        .take(limits.max_line_len)
        .position(|w| w == b"\r\n")
    {
        Some(pos) => pos,
        None if buf.len() >= limits.max_line_len => return ResponseOutcome::Garbled(buf.len()),
        None => return ResponseOutcome::Incomplete,
    };
    let (line, line_len) = (&buf[..pos], pos + 2);
    if line == b"END" {
        return ResponseOutcome::Resp(Response::End, line_len);
    }
    if line == b"STORED" {
        return ResponseOutcome::Resp(Response::Stored, line_len);
    }
    if line == b"ERROR" {
        return ResponseOutcome::Resp(Response::Error, line_len);
    }
    if let Some(msg) = line.strip_prefix(b"CLIENT_ERROR ") {
        return ResponseOutcome::Resp(Response::ClientError(msg), line_len);
    }
    if let Some(msg) = line.strip_prefix(b"SERVER_ERROR ") {
        return ResponseOutcome::Resp(Response::ServerError(msg), line_len);
    }
    if let Some(v) = line.strip_prefix(b"VERSION ") {
        return ResponseOutcome::Resp(Response::Version(v), line_len);
    }
    if let Some(rest) = line.strip_prefix(b"VALUE ") {
        let mut tokens = rest.split(|&b| b == b' ').filter(|t| !t.is_empty());
        let (key, flags, bytes) = match (tokens.next(), tokens.next(), tokens.next()) {
            (Some(k), Some(f), Some(b)) => (k, f, b),
            _ => return ResponseOutcome::Garbled(line_len),
        };
        let cas = tokens.next();
        if tokens.next().is_some() {
            return ResponseOutcome::Garbled(line_len);
        }
        let parse_num = |t: &[u8]| -> Option<u64> {
            if t.is_empty() || t.len() > 20 || !t.iter().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let mut v: u64 = 0;
            for &b in t {
                v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
            }
            Some(v)
        };
        let flags = match parse_num(flags).and_then(|v| u32::try_from(v).ok()) {
            Some(v) => v,
            None => return ResponseOutcome::Garbled(line_len),
        };
        let bytes = match parse_num(bytes) {
            Some(v) if v as usize <= limits.max_value_len => v as usize,
            _ => return ResponseOutcome::Garbled(line_len),
        };
        let cas = match cas {
            None => None,
            Some(t) => match parse_num(t) {
                Some(v) => Some(v),
                None => return ResponseOutcome::Garbled(line_len),
            },
        };
        let frame_len = line_len + bytes + 2;
        if buf.len() < frame_len {
            return ResponseOutcome::Incomplete;
        }
        if &buf[line_len + bytes..frame_len] != b"\r\n" {
            return ResponseOutcome::Garbled(frame_len);
        }
        return ResponseOutcome::Resp(
            Response::Value {
                key,
                flags,
                cas,
                data: &buf[line_len..line_len + bytes],
            },
            frame_len,
        );
    }
    ResponseOutcome::Garbled(line_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_command, ParseOutcome};

    #[test]
    fn request_encode_parse_roundtrip() {
        let mut buf = Vec::new();
        encode_get(&mut buf, [b"alpha".as_ref(), b"beta".as_ref()], true);
        encode_set(
            &mut buf,
            &SetCmd {
                key: b"k9",
                flags: 3,
                exptime: -1,
                data: b"pay\r\nload",
                noreply: true,
            },
        );
        buf.extend_from_slice(b"version\r\nquit\r\n");
        let limits = Limits::default();
        let mut reencoded = Vec::new();
        let mut off = 0;
        let mut count = 0;
        while off < buf.len() {
            match parse_command(&buf[off..], &limits) {
                ParseOutcome::Cmd(cmd, consumed) => {
                    encode_command(&mut reencoded, &cmd);
                    off += consumed;
                    count += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(count, 4);
        assert_eq!(reencoded, buf, "canonical roundtrip must be byte-identical");
    }

    #[test]
    fn response_frames_roundtrip() {
        let limits = Limits::default();
        let mut buf = Vec::new();
        encode_value(&mut buf, b"k", 7, Some(99), b"abc");
        buf.extend_from_slice(b"END\r\nSTORED\r\nVERSION nemo\r\nERROR\r\nCLIENT_ERROR oops\r\n");
        let mut off = 0;
        let mut seen = Vec::new();
        while off < buf.len() {
            match parse_response(&buf[off..], &limits) {
                ResponseOutcome::Resp(r, consumed) => {
                    seen.push(format!("{r:?}"));
                    off += consumed;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), 6);
        assert!(seen[0].contains("Value"));
        assert!(seen[0].contains("cas: Some(99)"));
        assert_eq!(seen[1], "End");
        assert_eq!(seen[2], "Stored");
        assert!(seen[3].contains("Version"));
        assert_eq!(seen[4], "Error");
        assert!(seen[5].contains("ClientError"));
    }

    #[test]
    fn response_value_split_points_resume() {
        let limits = Limits::default();
        let mut buf = Vec::new();
        encode_value(&mut buf, b"key", 1, None, b"0123456789");
        buf.extend_from_slice(b"END\r\n");
        for split in 0..=buf.len() {
            // Feed the prefix: must be a prefix-consistent outcome.
            let mut off = 0;
            let mut frames = 0;
            for chunk_end in [split, buf.len()] {
                loop {
                    match parse_response(&buf[off..chunk_end], &limits) {
                        ResponseOutcome::Resp(_, consumed) => {
                            off += consumed;
                            frames += 1;
                        }
                        ResponseOutcome::Incomplete => break,
                        other => panic!("split {split}: {other:?}"),
                    }
                }
            }
            assert_eq!(frames, 2, "split {split}");
        }
    }
}
