//! Per-connection protocol loop: read, parse a pipelined wave,
//! dispatch, collect completions, write one batched response.

use crate::parser::{parse_command, Command, Limits, ParseOutcome};
use crate::store::{map_key, synth_value, MetaStore};
use crate::wire::encode_value;
use nemo_flash::Nanos;
use nemo_metrics::ProtoStats;
use nemo_service::{Completion, CompletionKind, Dispatcher};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// How the server stamps virtual time onto dispatched engine
/// operations.
#[derive(Debug, Clone, Copy)]
pub enum ClockMode {
    /// Wall-clock nanoseconds since server start — what a deployed
    /// server uses, and what makes measured (RealFlash) completion
    /// times meaningful.
    Wall,
    /// A global tick counter advancing `gap` nanoseconds per engine
    /// operation, mirroring the in-process open-loop driver's
    /// virtual-time arrivals. Engine aggregates are timestamp-
    /// independent (the determinism suite proves it), so this mode
    /// exists to make *latency outputs* on modeled backends
    /// reproducible, and to mirror `OpenLoopReplay` exactly in the
    /// parity tests.
    Virtual {
        /// Nanoseconds between consecutive operation stamps.
        gap: u64,
    },
}

/// The server's operation clock (see [`ClockMode`]).
#[derive(Debug)]
pub struct ServerClock {
    mode: ClockMode,
    start: Instant,
    ticks: AtomicU64,
}

impl ServerClock {
    pub(crate) fn new(mode: ClockMode) -> Self {
        Self {
            mode,
            start: Instant::now(),
            ticks: AtomicU64::new(0),
        }
    }

    /// The timestamp for the next dispatched engine operation.
    pub fn now(&self) -> Nanos {
        match self.mode {
            ClockMode::Wall => Nanos(self.start.elapsed().as_nanos() as u64),
            ClockMode::Virtual { gap } => Nanos(self.ticks.fetch_add(gap, Ordering::Relaxed) + gap),
        }
    }
}

/// Everything a connection handler shares with the server.
pub(crate) struct ConnShared {
    pub dispatcher: Dispatcher,
    pub meta: Arc<MetaStore>,
    pub clock: Arc<ServerClock>,
    pub limits: Limits,
    pub shutdown: Arc<AtomicBool>,
}

/// An in-order response slot for one parsed command. Engine-bound
/// commands hold the dispatch seqs their rendering waits on;
/// everything else is pre-rendered.
enum PendingReply {
    /// Response bytes known at parse time (version, protocol errors).
    Immediate(Vec<u8>),
    /// A `get`/`gets`: one engine lookup per key, rendered as `VALUE`
    /// blocks plus `END` once every key's completion arrived.
    Get {
        /// `(wire key bytes, engine key, dispatch seq)` per key.
        keys: Vec<(Vec<u8>, u64, u64)>,
        cas: bool,
    },
    /// A `set`: `STORED` (unless `noreply`) once its completion
    /// arrived.
    Set { seq: u64, noreply: bool },
}

/// Runs one connection to completion. Returns the connection's
/// protocol counters.
pub(crate) fn handle_conn(mut stream: TcpStream, shared: &ConnShared) -> ProtoStats {
    let mut ps = ProtoStats {
        connections: 1,
        ..Default::default()
    };
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = vec![0u8; 16 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut pending: VecDeque<PendingReply> = VecDeque::new();
    let (tx, rx) = channel::<Completion>();
    let mut received: HashMap<u64, Completion> = HashMap::new();
    let mut next_seq: u64 = 0;

    'conn: loop {
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // client closed
            Ok(n) => {
                ps.bytes_in += n as u64;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Read timeout: the shutdown poll point. Every prior
                // wave was fully serviced, so draining is trivial.
                if shared.shutdown.load(Ordering::Relaxed) {
                    break 'conn;
                }
                continue 'conn;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue 'conn,
            Err(_) => break 'conn,
        }

        // Parse-and-dispatch one pipelined wave: every complete frame
        // currently buffered is dispatched before any completion is
        // awaited, so this connection's whole wave is in flight across
        // the shards at once, overlapping other connections' service.
        let mut off = 0;
        let mut closing = false;
        let mut fatal = false;
        loop {
            match parse_command(&buf[off..], &shared.limits) {
                ParseOutcome::Incomplete => break,
                ParseOutcome::Cmd(cmd, consumed) => {
                    off += consumed;
                    ps.commands += 1;
                    match cmd {
                        Command::Get { keys, cas } => {
                            ps.get_cmds += 1;
                            let mut slots = Vec::with_capacity(keys.count());
                            for key in keys.iter() {
                                ps.get_keys += 1;
                                let engine_key = map_key(key);
                                next_seq += 1;
                                shared.dispatcher.dispatch_lookup(
                                    engine_key,
                                    shared.clock.now(),
                                    next_seq,
                                    &tx,
                                );
                                slots.push((key.to_vec(), engine_key, next_seq));
                            }
                            pending.push_back(PendingReply::Get { keys: slots, cas });
                        }
                        Command::Set(set) => {
                            ps.set_cmds += 1;
                            if set.noreply {
                                ps.noreply_sets += 1;
                            }
                            let engine_key = map_key(set.key);
                            // Meta goes in before the engine put is
                            // dispatched so any later hit finds it.
                            shared
                                .meta
                                .insert(engine_key, set.flags, set.data.len() as u32);
                            next_seq += 1;
                            shared.dispatcher.dispatch_put(
                                engine_key,
                                (set.key.len() + set.data.len()) as u32,
                                shared.clock.now(),
                                next_seq,
                                &tx,
                            );
                            pending.push_back(PendingReply::Set {
                                seq: next_seq,
                                noreply: set.noreply,
                            });
                        }
                        Command::Version => {
                            let line =
                                concat!("VERSION nemo-proto ", env!("CARGO_PKG_VERSION"), "\r\n");
                            pending.push_back(PendingReply::Immediate(line.into()));
                        }
                        Command::Quit => {
                            closing = true;
                            break;
                        }
                    }
                }
                ParseOutcome::Error(err, consumed) => {
                    off += consumed;
                    ps.protocol_errors += 1;
                    pending.push_back(PendingReply::Immediate(err.reply().into()));
                }
                ParseOutcome::Fatal(err) => {
                    ps.fatal_errors += 1;
                    pending.push_back(PendingReply::Immediate(err.reply().into()));
                    closing = true;
                    fatal = true;
                    break;
                }
            }
        }
        buf.drain(..off);
        if fatal {
            // The stream is no longer delimitable; whatever is left in
            // the buffer is unparseable.
            buf.clear();
        }

        // Render the wave's responses in request order, waiting for
        // completions as needed, then flush with one write.
        out.clear();
        for reply in pending.drain(..) {
            match reply {
                PendingReply::Immediate(bytes) => out.extend_from_slice(&bytes),
                PendingReply::Get { keys, cas } => {
                    // Collect every key's completion before rendering:
                    // if any shard refused its key, the whole command is
                    // answered with one SERVER_ERROR line (memcached has
                    // no per-key error syntax inside a VALUE stream),
                    // and the seq bookkeeping stays consistent either
                    // way.
                    let completions: Vec<(Vec<u8>, u64, Completion)> = keys
                        .into_iter()
                        .map(|(wire_key, engine_key, seq)| {
                            (wire_key, engine_key, wait_for(seq, &rx, &mut received))
                        })
                        .collect();
                    if completions
                        .iter()
                        .any(|(_, _, c)| matches!(c.kind, CompletionKind::Unavailable { .. }))
                    {
                        ps.server_errors += 1;
                        out.extend_from_slice(b"SERVER_ERROR shard unavailable\r\n");
                        continue;
                    }
                    for (wire_key, engine_key, c) in completions {
                        let hit = matches!(c.kind, CompletionKind::Get { hit: true, .. });
                        if hit {
                            ps.wire_hits += 1;
                            // A hit with no metadata cannot happen through
                            // this front-end (meta precedes the put), but
                            // degrade to an empty value rather than lie
                            // about presence.
                            let meta = shared.meta.get(engine_key).unwrap_or(crate::ObjMeta {
                                flags: 0,
                                vlen: 0,
                                cas: 0,
                            });
                            let mut data = Vec::with_capacity(meta.vlen as usize);
                            synth_value(&mut data, engine_key, meta.vlen as usize);
                            encode_value(
                                &mut out,
                                &wire_key,
                                meta.flags,
                                cas.then_some(meta.cas),
                                &data,
                            );
                        } else {
                            ps.wire_misses += 1;
                            shared.meta.forget(engine_key);
                        }
                    }
                    out.extend_from_slice(b"END\r\n");
                }
                PendingReply::Set { seq, noreply } => {
                    let c = wait_for(seq, &rx, &mut received);
                    let refused = matches!(c.kind, CompletionKind::Unavailable { .. });
                    if refused {
                        ps.server_errors += 1;
                    }
                    if !noreply {
                        if refused {
                            out.extend_from_slice(b"SERVER_ERROR shard unavailable\r\n");
                        } else {
                            out.extend_from_slice(b"STORED\r\n");
                        }
                    }
                }
            }
        }
        if !out.is_empty() {
            ps.bytes_out += out.len() as u64;
            if stream.write_all(&out).is_err() {
                break 'conn;
            }
        }
        if closing {
            break 'conn;
        }
    }
    // Every dispatched operation was awaited before its wave's reply
    // was written, so nothing is in flight here: shard workers hold no
    // state for this connection and the reply channel can simply drop.
    ps.connections_closed = 1;
    ps
}

/// Blocks until the completion for `seq` arrives. Completions from
/// different shards arrive in arbitrary order; stragglers park in
/// `received` until their turn.
fn wait_for(
    seq: u64,
    rx: &std::sync::mpsc::Receiver<Completion>,
    received: &mut HashMap<u64, Completion>,
) -> Completion {
    if let Some(c) = received.remove(&seq) {
        return c;
    }
    loop {
        let c = rx.recv().expect("shard worker alive");
        if c.seq == seq {
            return c;
        }
        received.insert(c.seq, c);
    }
}
