//! Incremental, zero-copy memcached-text request parser.
//!
//! The parser is a pure function over a byte buffer: it either yields
//! one complete command (borrowing key and value bytes straight out of
//! the buffer — nothing is copied), asks for more bytes, or reports an
//! error with a recovery plan. It keeps **no internal state**, so a
//! connection handler resumes after any TCP segment boundary by simply
//! appending the next read to its buffer and calling [`parse_command`]
//! again — the split-point property tests exercise every possible
//! boundary of a pipelined script.
//!
//! Over-read safety is structural: the parser only ever indexes into
//! the slice it was given, and [`ParseOutcome::Cmd`]'s `consumed` is
//! asserted (and property-tested) to be `<= buf.len()`.

/// Parser limits; defaults mirror memcached's (250-byte keys, 1 MiB
/// values) with an 8 KiB command-line bound so an attacker cannot make
/// the server buffer an endless line looking for `\r\n`.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted key, in bytes.
    pub max_key_len: usize,
    /// Largest accepted `set` data block, in bytes.
    pub max_value_len: usize,
    /// Longest accepted command line (through its `\r\n`), in bytes.
    /// Lines longer than this are unrecoverable: the frame boundary is
    /// unknowable, so the connection must close.
    pub max_line_len: usize,
    /// Most keys accepted in one `get`/`gets`.
    pub max_keys_per_get: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_key_len: 250,
            max_value_len: 1024 * 1024,
            max_line_len: 8192,
            max_keys_per_get: 1024,
        }
    }
}

/// A parsed `set` command. `data` borrows the value bytes from the
/// input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetCmd<'a> {
    /// The object key, verbatim wire bytes.
    pub key: &'a [u8],
    /// Client-opaque flags stored with the object.
    pub flags: u32,
    /// Expiration time; parsed for wire compatibility, ignored by the
    /// cache (the engines model capacity eviction, not TTLs).
    pub exptime: i64,
    /// The value bytes.
    pub data: &'a [u8],
    /// Whether the client asked for no `STORED` reply.
    pub noreply: bool,
}

/// The whitespace-separated key list of a `get`/`gets`, iterated
/// without allocating. Keys were validated during parsing, so the
/// iterator yields them as plain byte slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Keys<'a> {
    line: &'a [u8],
}

impl<'a> Keys<'a> {
    /// Number of keys (the parser guarantees at least one).
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// Iterates the keys in wire order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> {
        self.line.split(|&b| b == b' ').filter(|k| !k.is_empty())
    }
}

/// One complete request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command<'a> {
    /// `get`/`gets` — `cas` is true for `gets`, which additionally
    /// returns a per-object cas unique in each `VALUE` header.
    Get {
        /// The requested keys.
        keys: Keys<'a>,
        /// Whether this was `gets`.
        cas: bool,
    },
    /// `set <key> <flags> <exptime> <bytes> [noreply]` plus data block.
    Set(SetCmd<'a>),
    /// `version`
    Version,
    /// `quit`
    Quit,
}

/// Why a frame was rejected. [`WireError::reply`] is the exact response
/// line the server sends (empty for errors where the peer is already
/// gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Unknown command name (memcached answers a bare `ERROR`).
    UnknownCommand,
    /// A malformed-but-delimited command line; the message goes into a
    /// `CLIENT_ERROR`.
    BadFormat(&'static str),
    /// `set` declared more bytes than [`Limits::max_value_len`]; fatal,
    /// because consuming an attacker-sized body is the thing the limit
    /// exists to prevent.
    ValueTooLarge,
    /// The data block was not terminated by `\r\n` where the declared
    /// byte count said it would be; fatal, since the stream is no
    /// longer delimitable.
    BadDataChunk,
    /// A command line exceeded [`Limits::max_line_len`] without a
    /// terminator; fatal.
    LineTooLong,
}

impl WireError {
    /// The response memcached sends for this error.
    pub fn reply(&self) -> &'static str {
        match self {
            WireError::UnknownCommand => "ERROR\r\n",
            WireError::BadFormat(msg) => {
                // The three formats the parser actually produces; keeping
                // them static avoids allocating on the error path.
                match *msg {
                    "bad command line format" => "CLIENT_ERROR bad command line format\r\n",
                    "key too long" => "CLIENT_ERROR bad command line format: key too long\r\n",
                    "too many keys" => "CLIENT_ERROR bad command line format: too many keys\r\n",
                    _ => "CLIENT_ERROR bad command line format\r\n",
                }
            }
            WireError::ValueTooLarge => "SERVER_ERROR object too large for cache\r\n",
            WireError::BadDataChunk => "CLIENT_ERROR bad data chunk\r\n",
            WireError::LineTooLong => "CLIENT_ERROR line too long\r\n",
        }
    }

    /// Whether the connection can keep parsing after this error.
    /// Recoverable errors skip the offending line; fatal ones close the
    /// connection because the next frame boundary is unknowable.
    pub fn recoverable(&self) -> bool {
        matches!(self, WireError::UnknownCommand | WireError::BadFormat(_))
    }
}

/// Result of trying to parse one frame from the front of `buf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcome<'a> {
    /// A complete command occupying the first `consumed` bytes.
    Cmd(Command<'a>, usize),
    /// No complete frame yet — read more bytes and call again.
    Incomplete,
    /// A delimited-but-invalid frame occupying `consumed` bytes; send
    /// [`WireError::reply`] and keep going.
    Error(WireError, usize),
    /// The stream is unrecoverable; send [`WireError::reply`] and close.
    Fatal(WireError),
}

/// Finds the first `\r\n` in `buf`, returning the line (exclusive) and
/// the number of bytes through the terminator.
fn take_line<'a>(buf: &'a [u8], limits: &Limits) -> Option<Result<(&'a [u8], usize), WireError>> {
    // A lone `\n` never terminates a command here: the data block of a
    // `set` is length-delimited and may contain bare newlines, so
    // command lines are strictly `\r\n`-terminated.
    match buf
        .windows(2)
        .take(limits.max_line_len)
        .position(|w| w == b"\r\n")
    {
        Some(pos) => Some(Ok((&buf[..pos], pos + 2))),
        None if buf.len() >= limits.max_line_len => Some(Err(WireError::LineTooLong)),
        None => None,
    }
}

/// Is `key` a legal memcached key: non-empty, within the length limit,
/// and free of whitespace/control bytes?
fn valid_key(key: &[u8], limits: &Limits) -> Result<(), WireError> {
    if key.len() > limits.max_key_len {
        return Err(WireError::BadFormat("key too long"));
    }
    if key.is_empty() || key.iter().any(|&b| b <= b' ' || b == 0x7f) {
        return Err(WireError::BadFormat("bad command line format"));
    }
    Ok(())
}

fn parse_u32(token: &[u8]) -> Result<u32, WireError> {
    parse_u64(token)
        .and_then(|v| u32::try_from(v).map_err(|_| WireError::BadFormat("bad command line format")))
}

fn parse_u64(token: &[u8]) -> Result<u64, WireError> {
    if token.is_empty() || token.len() > 20 || !token.iter().all(|b| b.is_ascii_digit()) {
        return Err(WireError::BadFormat("bad command line format"));
    }
    let mut v: u64 = 0;
    for &b in token {
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as u64))
            .ok_or(WireError::BadFormat("bad command line format"))?;
    }
    Ok(v)
}

fn parse_i64(token: &[u8]) -> Result<i64, WireError> {
    let (neg, digits) = match token.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, token),
    };
    let v = parse_u64(digits)?;
    if neg {
        i64::try_from(v)
            .map(|v| -v)
            .map_err(|_| WireError::BadFormat("bad command line format"))
    } else {
        i64::try_from(v).map_err(|_| WireError::BadFormat("bad command line format"))
    }
}

/// Parses one frame from the front of `buf`. Zero-copy: a returned
/// [`Command`] borrows its key and value bytes from `buf`. Stateless:
/// on [`ParseOutcome::Incomplete`], append more bytes and call again.
pub fn parse_command<'a>(buf: &'a [u8], limits: &Limits) -> ParseOutcome<'a> {
    let (line, line_len) = match take_line(buf, limits) {
        None => return ParseOutcome::Incomplete,
        Some(Err(e)) => return ParseOutcome::Fatal(e),
        Some(Ok(pair)) => pair,
    };
    let mut tokens = line.split(|&b| b == b' ').filter(|t| !t.is_empty());
    let verb = match tokens.next() {
        Some(v) => v,
        // A bare "\r\n" (or all-spaces line): memcached treats it as an
        // unknown command.
        None => return ParseOutcome::Error(WireError::UnknownCommand, line_len),
    };
    match verb {
        b"get" | b"gets" => {
            // The verb is a subslice of `line`, but not necessarily at
            // offset 0 (the tokenizer skips leading spaces) — recover
            // its position from the pointers.
            let keys_start = verb.as_ptr() as usize - line.as_ptr() as usize + verb.len();
            let keys = Keys {
                line: &line[keys_start..],
            };
            let mut count = 0usize;
            for key in keys.iter() {
                if let Err(e) = valid_key(key, limits) {
                    return ParseOutcome::Error(e, line_len);
                }
                count += 1;
            }
            if count == 0 {
                return ParseOutcome::Error(
                    WireError::BadFormat("bad command line format"),
                    line_len,
                );
            }
            if count > limits.max_keys_per_get {
                return ParseOutcome::Error(WireError::BadFormat("too many keys"), line_len);
            }
            ParseOutcome::Cmd(
                Command::Get {
                    keys,
                    cas: verb == b"gets",
                },
                line_len,
            )
        }
        b"set" => {
            let bad = |e| ParseOutcome::Error(e, line_len);
            let (key, flags, exptime, bytes) =
                match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
                    (Some(k), Some(f), Some(e), Some(b)) => (k, f, e, b),
                    _ => return bad(WireError::BadFormat("bad command line format")),
                };
            let noreply = match tokens.next() {
                None => false,
                Some(b"noreply") => true,
                Some(_) => return bad(WireError::BadFormat("bad command line format")),
            };
            if tokens.next().is_some() {
                return bad(WireError::BadFormat("bad command line format"));
            }
            if let Err(e) = valid_key(key, limits) {
                return bad(e);
            }
            let flags = match parse_u32(flags) {
                Ok(v) => v,
                Err(e) => return bad(e),
            };
            let exptime = match parse_i64(exptime) {
                Ok(v) => v,
                Err(e) => return bad(e),
            };
            let bytes = match parse_u64(bytes) {
                Ok(v) => v as usize,
                Err(e) => return bad(e),
            };
            if bytes > limits.max_value_len {
                // Fatal: honoring the declared length would mean
                // buffering an attacker-chosen body.
                return ParseOutcome::Fatal(WireError::ValueTooLarge);
            }
            let frame_len = line_len + bytes + 2;
            if buf.len() < frame_len {
                return ParseOutcome::Incomplete;
            }
            if &buf[line_len + bytes..frame_len] != b"\r\n" {
                return ParseOutcome::Fatal(WireError::BadDataChunk);
            }
            ParseOutcome::Cmd(
                Command::Set(SetCmd {
                    key,
                    flags,
                    exptime,
                    data: &buf[line_len..line_len + bytes],
                    noreply,
                }),
                frame_len,
            )
        }
        b"version" => {
            if tokens.next().is_some() {
                return ParseOutcome::Error(
                    WireError::BadFormat("bad command line format"),
                    line_len,
                );
            }
            ParseOutcome::Cmd(Command::Version, line_len)
        }
        b"quit" => {
            if tokens.next().is_some() {
                return ParseOutcome::Error(
                    WireError::BadFormat("bad command line format"),
                    line_len,
                );
            }
            ParseOutcome::Cmd(Command::Quit, line_len)
        }
        _ => ParseOutcome::Error(WireError::UnknownCommand, line_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lim() -> Limits {
        Limits::default()
    }

    fn parse(buf: &[u8]) -> ParseOutcome<'_> {
        parse_command(buf, &lim())
    }

    #[test]
    fn get_single_and_multi_key() {
        match parse(b"get alpha\r\n") {
            ParseOutcome::Cmd(Command::Get { keys, cas: false }, 11) => {
                assert_eq!(keys.iter().collect::<Vec<_>>(), vec![b"alpha".as_ref()]);
            }
            other => panic!("{other:?}"),
        }
        match parse(b"gets a b c\r\ntrailing") {
            ParseOutcome::Cmd(Command::Get { keys, cas: true }, 12) => {
                assert_eq!(keys.count(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_roundtrip_fields() {
        let frame = b"set k1 7 0 5 noreply\r\nhello\r\nnext";
        match parse(frame) {
            ParseOutcome::Cmd(Command::Set(s), consumed) => {
                assert_eq!(s.key, b"k1");
                assert_eq!(s.flags, 7);
                assert_eq!(s.exptime, 0);
                assert_eq!(s.data, b"hello");
                assert!(s.noreply);
                assert_eq!(consumed, frame.len() - 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_value_may_contain_crlf() {
        let frame = b"set k 0 0 6\r\nab\r\ncd\r\n";
        match parse(frame) {
            ParseOutcome::Cmd(Command::Set(s), consumed) => {
                assert_eq!(s.data, b"ab\r\ncd");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        assert_eq!(parse(b"get alp"), ParseOutcome::Incomplete);
        assert_eq!(parse(b"set k 0 0 5\r\nhel"), ParseOutcome::Incomplete);
        assert_eq!(parse(b"set k 0 0 5\r\nhello"), ParseOutcome::Incomplete);
        assert_eq!(parse(b"set k 0 0 5\r\nhello\r"), ParseOutcome::Incomplete);
        assert_eq!(parse(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn errors_and_recovery() {
        assert!(matches!(
            parse(b"frobnicate now\r\n"),
            ParseOutcome::Error(WireError::UnknownCommand, 16)
        ));
        assert!(matches!(
            parse(b"get\r\n"),
            ParseOutcome::Error(WireError::BadFormat(_), 5)
        ));
        assert!(matches!(
            parse(b"set k 0 0\r\n"),
            ParseOutcome::Error(WireError::BadFormat(_), 11)
        ));
        assert!(matches!(
            parse(b"set k 0 0 abc\r\n"),
            ParseOutcome::Error(WireError::BadFormat(_), 15)
        ));
        let long_key = [b'k'; 251];
        let mut frame = b"get ".to_vec();
        frame.extend_from_slice(&long_key);
        frame.extend_from_slice(b"\r\n");
        assert!(matches!(
            parse(&frame),
            ParseOutcome::Error(WireError::BadFormat("key too long"), _)
        ));
    }

    #[test]
    fn fatal_errors() {
        assert_eq!(
            parse(b"set k 0 0 99999999\r\n"),
            ParseOutcome::Fatal(WireError::ValueTooLarge)
        );
        assert_eq!(
            parse(b"set k 0 0 3\r\nabcXX"),
            ParseOutcome::Fatal(WireError::BadDataChunk)
        );
        let endless = vec![b'a'; lim().max_line_len + 10];
        assert_eq!(parse(&endless), ParseOutcome::Fatal(WireError::LineTooLong));
    }

    #[test]
    fn exptime_accepts_negative() {
        match parse(b"set k 0 -1 2\r\nab\r\n") {
            ParseOutcome::Cmd(Command::Set(s), _) => assert_eq!(s.exptime, -1),
            other => panic!("{other:?}"),
        }
    }
}
