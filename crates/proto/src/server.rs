//! The TCP server: an accept loop feeding a bounded pool of
//! connection-worker threads, mirroring the shard-worker style of
//! `nemo-service` — plain `std::net`, no async runtime.
//!
//! Threading model: the accept thread hands each accepted stream to a
//! `sync_channel` whose receivers are `conn_workers` long-lived worker
//! threads; each worker runs one connection at a time to completion
//! (`conn.rs`). Backpressure is therefore layered: a full accept
//! queue delays new connections, and a full shard command queue blocks
//! the dispatching connection handler (`Dispatcher`'s blocking send),
//! which in turn stops reading from its socket and lets TCP flow
//! control push back on the client.

use crate::conn::{handle_conn, ClockMode, ConnShared, ServerClock};
use crate::parser::Limits;
use crate::store::MetaStore;
use nemo_engine::{CacheEngine, EngineStats};
use nemo_metrics::ProtoStats;
use nemo_service::{ShardedCache, ShardedReport};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to bind an ephemeral port (tests).
    pub addr: String,
    /// Size of the connection-worker pool — the maximum number of
    /// concurrently served connections.
    pub conn_workers: usize,
    /// Accepted-but-unserved connections queued for a worker.
    pub accept_backlog: usize,
    /// Protocol limits (key/value/line sizes).
    pub limits: Limits,
    /// How engine-op timestamps are generated.
    pub clock: ClockMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 4,
            accept_backlog: 64,
            limits: Limits::default(),
            clock: ClockMode::Wall,
        }
    }
}

/// Everything the server measured, returned by [`Server::finish`].
#[derive(Debug)]
pub struct ServerReport<E: CacheEngine> {
    /// Protocol-level counters merged across all connections.
    pub proto: ProtoStats,
    /// The shard fleet's report (engines, queue stats, device stats).
    pub report: ShardedReport<E>,
    /// Live metadata entries left in the side table at shutdown.
    pub meta_entries: usize,
}

/// A running memcached-text server over a [`ShardedCache`].
///
/// Graceful shutdown ([`Server::finish`]) stops accepting, lets every
/// in-flight connection drain (handlers notice the flag at their next
/// read-timeout tick, having already fully serviced their last wave),
/// joins all threads, then drains the shard fleet itself.
pub struct Server<E: CacheEngine + Send + 'static> {
    cache: ShardedCache<E>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    clock: Arc<ServerClock>,
    meta: Arc<MetaStore>,
    stats: Arc<Mutex<ProtoStats>>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl<E: CacheEngine + Send + 'static> std::fmt::Debug for Server<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.worker_handles.len())
            .finish()
    }
}

impl<E: CacheEngine + Send + 'static> Server<E> {
    /// Binds and starts serving `cache` per `cfg`. The returned handle
    /// owns the fleet; keep it alive for the server's lifetime.
    pub fn start(cache: ShardedCache<E>, cfg: ServerConfig) -> io::Result<Self> {
        assert!(cfg.conn_workers > 0, "need at least one connection worker");
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(ServerClock::new(cfg.clock));
        let meta = Arc::new(MetaStore::new(cache.shards()));
        let stats = Arc::new(Mutex::new(ProtoStats::default()));
        let dispatcher = cache.dispatcher();

        let (conn_tx, conn_rx) = sync_channel::<std::net::TcpStream>(cfg.accept_backlog);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut worker_handles = Vec::with_capacity(cfg.conn_workers);
        for i in 0..cfg.conn_workers {
            let rx = Arc::clone(&conn_rx);
            let shared = ConnShared {
                dispatcher: dispatcher.clone(),
                meta: Arc::clone(&meta),
                clock: Arc::clone(&clock),
                limits: cfg.limits,
                shutdown: Arc::clone(&shutdown),
            };
            let stats = Arc::clone(&stats);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("nemo-conn-{i}"))
                    .spawn(move || conn_worker(&rx, &shared, &stats))
                    .expect("spawn connection worker"),
            );
        }

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("nemo-accept".to_string())
                .spawn(move || accept_loop(&listener, &conn_tx, &shutdown))
                .expect("spawn accept thread")
        };

        Ok(Self {
            cache,
            local_addr,
            shutdown,
            clock,
            meta,
            stats,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of protocol counters from *closed* connections.
    pub fn proto_stats(&self) -> ProtoStats {
        *self.stats.lock().expect("proto stats poisoned")
    }

    /// Merged engine stats across the shard fleet (live).
    pub fn engine_stats(&self) -> EngineStats {
        self.cache.stats()
    }

    /// Graceful shutdown: stop accepting, drain and join every
    /// connection, then drain the shard fleet and return the report.
    pub fn finish(mut self) -> ServerReport<E> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Accept thread exit dropped the conn sender; workers finish
        // their current connection (noticing the flag at a read-timeout
        // tick), find the channel closed, and exit.
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let proto = *self.stats.lock().expect("proto stats poisoned");
        let meta_entries = self.meta.len();
        let report = self.cache.finish(self.clock.now());
        ServerReport {
            proto,
            report,
            meta_entries,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<std::net::TcpStream>,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // The read timeout is the shutdown poll interval for
                // idle connections.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn conn_worker(
    rx: &Mutex<Receiver<std::net::TcpStream>>,
    shared: &ConnShared,
    stats: &Mutex<ProtoStats>,
) {
    loop {
        // Hold the lock only to dequeue, not while serving.
        let stream = match rx.lock().expect("conn queue poisoned").recv() {
            Ok(s) => s,
            Err(_) => break, // accept loop gone: shutdown
        };
        let ps = handle_conn(stream, shared);
        let mut agg = stats.lock().expect("proto stats poisoned");
        *agg = agg.merge(&ps);
    }
}
