//! Cross-crate integration tests: all five engines driven by the same
//! workload through the shared trait, checking the paper's qualitative
//! claims hold end to end.

use nemo_repro::baselines::{
    FairyWren, FairyWrenConfig, Kangaroo, KangarooConfig, LogCache, LogCacheConfig, SetCache,
    SetCacheConfig,
};
use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::{LatencyModel, Nanos};
use nemo_repro::sim::standard_geometry;
use nemo_repro::trace::{RequestKind, TraceConfig, TraceGenerator};

const FLASH_MB: u32 = 24;
const OPS: u64 = 400_000;

fn trace() -> TraceGenerator {
    TraceGenerator::new(TraceConfig::twitter_merged(
        FLASH_MB as f64 * 6.0 / 337_848.0,
    ))
}

fn engines() -> Vec<Box<dyn CacheEngine>> {
    let geometry = standard_geometry(FLASH_MB);
    let mut nemo_cfg = NemoConfig::new(geometry);
    nemo_cfg.flush_threshold = 4;
    nemo_cfg.expected_objects_per_set = 16;
    nemo_cfg.index_group_sgs = 8;
    vec![
        Box::new(Nemo::new(nemo_cfg)),
        Box::new(LogCache::new(LogCacheConfig {
            geometry,
            latency: LatencyModel::default(),
        })),
        Box::new(SetCache::new(SetCacheConfig {
            geometry,
            latency: LatencyModel::default(),
            op_ratio: 0.5,
            bloom_bits_per_object: 4.0,
        })),
        Box::new(FairyWren::new(FairyWrenConfig::log_op(geometry, 5, 5))),
        Box::new(Kangaroo::new(KangarooConfig {
            geometry,
            latency: LatencyModel::default(),
            log_fraction: 0.05,
            op_ratio: 0.05,
        })),
    ]
}

fn drive(engine: &mut dyn CacheEngine, ops: u64) {
    let mut gen = trace();
    for _ in 0..ops {
        let r = gen.next_request();
        match r.kind {
            RequestKind::Get => {
                if !engine.get(r.key, Nanos::ZERO).hit {
                    engine.put(r.key, r.size, Nanos::ZERO);
                }
            }
            RequestKind::Put => {
                engine.put(r.key, r.size, Nanos::ZERO);
            }
        }
    }
}

#[test]
fn all_engines_complete_the_workload() {
    for mut engine in engines() {
        drive(engine.as_mut(), OPS);
        let s = engine.stats();
        assert!(s.gets > 0, "{} processed no gets", engine.name());
        assert!(s.puts > 0, "{} processed no puts", engine.name());
        assert!(s.hits <= s.gets, "{} hit accounting broken", engine.name());
        assert!(
            s.flash_bytes_written > 0,
            "{} never wrote flash",
            engine.name()
        );
    }
}

#[test]
fn wa_ordering_matches_figure_12a() {
    let mut results = std::collections::HashMap::new();
    for mut engine in engines() {
        drive(engine.as_mut(), OPS);
        results.insert(engine.name().to_string(), engine.stats().total_wa());
    }
    let log = results["log"];
    let nemo = results["nemo"];
    let fw = results["fairywren"];
    let set = results["set"];
    let kg = results["kangaroo"];
    // Fig. 12a's ordering: Log ~ Nemo << FW ~ Set << KG.
    assert!(log < 1.3, "log WA {log}");
    assert!(nemo < 2.5, "nemo WA {nemo}");
    assert!(fw > 3.0 * nemo, "fw {fw} vs nemo {nemo}");
    assert!(set > 3.0 * nemo, "set {set} vs nemo {nemo}");
    assert!(kg > fw, "kg {kg} must exceed fw {fw}");
}

#[test]
fn memory_ordering_matches_table_6() {
    let mut results = std::collections::HashMap::new();
    for mut engine in engines() {
        drive(engine.as_mut(), OPS);
        results.insert(engine.name().to_string(), engine.memory().bits_per_object());
    }
    // Log's exact index dwarfs everything (>100 bits); Nemo and the
    // hierarchical designs stay within a few tens of bits.
    assert!(results["log"] > 100.0, "log {}", results["log"]);
    assert!(results["nemo"] < 40.0, "nemo {}", results["nemo"]);
    assert!(results["fairywren"] < 40.0, "fw {}", results["fairywren"]);
    assert!(
        results["nemo"] < results["log"] / 4.0,
        "nemo must be far cheaper than log"
    );
}

#[test]
fn hot_objects_stay_cached_in_every_engine() {
    // A handful of keys re-touched constantly must survive in any sane
    // cache under moderate churn.
    let hot: Vec<u64> = (0..50u64)
        .map(|k| k.wrapping_mul(0x00AB_CD12_3456_789B))
        .collect();
    for mut engine in engines() {
        let mut gen = trace();
        for i in 0..OPS {
            let r = gen.next_request();
            if !engine.get(r.key, Nanos::ZERO).hit {
                engine.put(r.key, r.size, Nanos::ZERO);
            }
            if i % 8 == 0 {
                let hk = hot[(i / 8) as usize % hot.len()];
                if !engine.get(hk, Nanos::ZERO).hit {
                    engine.put(hk, 200, Nanos::ZERO);
                }
            }
        }
        let alive = hot
            .iter()
            .filter(|&&k| engine.get(k, Nanos::ZERO).hit)
            .count();
        assert!(
            alive >= 40,
            "{}: only {alive}/50 hot objects survived",
            engine.name()
        );
    }
}

#[test]
fn device_accounting_is_consistent() {
    for mut engine in engines() {
        drive(engine.as_mut(), OPS / 2);
        let s = engine.stats();
        // Engine-level flash writes can never exceed device-level bytes
        // written (device counts GC traffic too for conventional SSDs).
        assert!(
            s.device.bytes_written >= s.flash_bytes_written,
            "{}: device {} < engine {}",
            engine.name(),
            s.device.bytes_written,
            s.flash_bytes_written
        );
        assert!(s.nand_bytes_written >= s.flash_bytes_written);
    }
}
