//! Property-based tests of the substrates the engines stand on: the FTL
//! must never lose or corrupt data regardless of the write pattern, and
//! engines must be bit-for-bit deterministic across runs.

use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::{ConventionalSsd, Geometry, LatencyModel, Nanos};
use nemo_repro::util::Xoshiro256StarStar;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The conventional-SSD FTL preserves the latest version of every
    /// logical page under arbitrary overwrite patterns that trigger GC.
    #[test]
    fn ftl_never_loses_latest_version(
        writes in prop::collection::vec((0u64..48, 0u8..255), 50..400)
    ) {
        let geom = Geometry::new(512, 8, 16, 4);
        let mut ssd = ConventionalSsd::new(geom, LatencyModel::zero(), 0.5);
        prop_assume!(ssd.user_page_count() >= 48);
        let mut latest = std::collections::HashMap::new();
        for (lpn, fill) in writes {
            let page = vec![fill; 512];
            ssd.write_page(lpn, &page, Nanos::ZERO).expect("write");
            latest.insert(lpn, fill);
        }
        for (lpn, fill) in latest {
            let (back, _) = ssd.read_page(lpn, Nanos::ZERO).expect("read");
            prop_assert!(back.iter().all(|&b| b == fill),
                "lpn {lpn} corrupted (wanted {fill})");
        }
        // NAND writes include host writes, never less.
        let f = ssd.ftl_stats();
        prop_assert!(f.nand_pages_written >= f.host_pages_written);
        prop_assert!(f.dlwa() >= 1.0);
    }

    /// Engines are deterministic: identical op sequences produce identical
    /// statistics (the whole experiment methodology rests on this).
    #[test]
    fn engines_are_deterministic(seed in any::<u64>()) {
        use nemo_repro::core::{Nemo, NemoConfig};
        let run = || {
            let mut cfg = NemoConfig::new(Geometry::new(4096, 64, 16, 4));
            cfg.flush_threshold = 4;
            cfg.expected_objects_per_set = 16;
            cfg.index_group_sgs = 4;
            let mut nemo = Nemo::new(cfg);
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            for _ in 0..4000 {
                let key = rng.next_below(3000);
                let size = 24 + rng.next_below(300) as u32;
                if !nemo.get(key, Nanos::ZERO).hit {
                    nemo.put(key, size, Nanos::ZERO);
                }
            }
            nemo.stats()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Miss-then-fill keeps an engine's hit accounting consistent with an
    /// exact reference model (for the exact-index log cache).
    #[test]
    fn log_cache_agrees_with_reference_model(
        ops in prop::collection::vec((0u64..500, 24u32..400), 100..600)
    ) {
        use nemo_repro::baselines::{LogCache, LogCacheConfig};
        // Device large enough that nothing is evicted: every get after a
        // put must hit, exactly like a HashMap.
        let mut cache = LogCache::new(LogCacheConfig {
            geometry: Geometry::new(4096, 64, 16, 4),
            latency: LatencyModel::zero(),
        });
        let mut reference = std::collections::HashSet::new();
        for (key, size) in ops {
            let hit = cache.get(key, Nanos::ZERO).hit;
            prop_assert_eq!(hit, reference.contains(&key),
                "log cache and reference disagree on key {}", key);
            if !hit {
                cache.put(key, size, Nanos::ZERO);
                reference.insert(key);
            }
        }
    }
}

#[test]
fn file_backed_device_matches_memory_device() {
    use nemo_repro::flash::{SimFlash, ZoneId, ZonedFlash};
    let geom = Geometry::new(512, 8, 4, 2);
    let dir = std::env::temp_dir().join("nemo_repro_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("parity.img");
    let mut mem = SimFlash::with_latency(geom, LatencyModel::zero());
    let mut file = SimFlash::file_backed(geom, LatencyModel::zero(), &path).expect("file dev");
    let mut rng = Xoshiro256StarStar::seed_from_u64(17);
    for i in 0..24u32 {
        let zone = ZoneId(i % 4);
        let page: Vec<u8> = (0..512).map(|_| rng.next_u64() as u8).collect();
        let a = mem.append(zone, &page, Nanos::ZERO);
        let b = file.append(zone, &page, Nanos::ZERO);
        assert_eq!(a.is_ok(), b.is_ok(), "append parity at op {i}");
        if let (Ok((addr_a, _)), Ok((addr_b, _))) = (a, b) {
            assert_eq!(addr_a, addr_b);
            let (da, _) = mem.read_pages(addr_a, 1, Nanos::ZERO).expect("mem read");
            let (db, _) = file.read_pages(addr_b, 1, Nanos::ZERO).expect("file read");
            assert_eq!(da, db, "data parity at {addr_a}");
        }
    }
    assert_eq!(mem.stats().pages_written, file.stats().pages_written);
    drop(file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn fairywren_and_kangaroo_share_migration_mechanics_but_differ_in_gc() {
    use nemo_repro::baselines::{FairyWren, FairyWrenConfig, Kangaroo, KangarooConfig};
    use nemo_repro::sim::standard_geometry;
    use nemo_repro::trace::{RequestKind, TraceConfig, TraceGenerator};
    let geometry = standard_geometry(24);
    let mut fw = FairyWren::new(FairyWrenConfig::log_op(geometry, 5, 5));
    let mut kg = Kangaroo::new(KangarooConfig {
        geometry,
        latency: LatencyModel::default(),
        log_fraction: 0.05,
        op_ratio: 0.05,
    });
    let mut gen = TraceGenerator::new(TraceConfig::twitter_merged(24.0 * 6.0 / 337_848.0));
    for _ in 0..500_000u64 {
        let r = gen.next_request();
        match r.kind {
            RequestKind::Get => {
                for e in [&mut fw as &mut dyn CacheEngine, &mut kg] {
                    if !e.get(r.key, Nanos::ZERO).hit {
                        e.put(r.key, r.size, Nanos::ZERO);
                    }
                }
            }
            RequestKind::Put => {
                fw.put(r.key, r.size, Nanos::ZERO);
                kg.put(r.key, r.size, Nanos::ZERO);
            }
        }
    }
    // Kangaroo's pure relocations must exist; FairyWREN folds GC into
    // migration so its "relocation" class is only hot-set writeback.
    assert!(kg.gc_relocations() > 0, "kangaroo must relocate (Case 3.1)");
    let (p, a) = fw.rmw_counts();
    assert!(
        p > 0 && a > 0,
        "fw needs both passive and active migrations"
    );
    // The multiplicative GC cost makes Kangaroo strictly worse (§5.2).
    assert!(
        kg.stats().alwa() > fw.stats().alwa(),
        "KG {} must exceed FW {}",
        kg.stats().alwa(),
        fw.stats().alwa()
    );
}
