//! Property-based tests (proptest) over the core data structures and
//! invariants that every experiment relies on.
//!
//! Case counts are capped per block (`ProptestConfig::with_cases`) so the
//! whole suite stays well inside the tier-1 `cargo test -q` time budget
//! (~2 minutes). The deep generative sweeps live at the bottom behind
//! `#[ignore]`; run them explicitly with:
//!
//! ```text
//! cargo test --test property_based -- --ignored
//! ```

use nemo_repro::baselines::{LogCache, LogCacheConfig};
use nemo_repro::bloom::BloomFilter;
use nemo_repro::core::{MemSg, Nemo, NemoConfig};
use nemo_repro::engine::codec::{self, PageBuf};
use nemo_repro::engine::{CacheEngine, EngineStats, MemoryBreakdown};
use nemo_repro::flash::{Geometry, LatencyModel, Nanos, SimFlash, ZoneId, ZonedFlash};
use nemo_repro::metrics::LatencyHistogram;
use nemo_repro::service::shard_of;
use nemo_repro::trace::ZipfSampler;
use nemo_repro::util::Xoshiro256StarStar;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bloom filters never produce false negatives, for any key set.
    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(any::<u64>(), 1..200)) {
        let mut bf = BloomFilter::for_items(keys.len() as u64, 0.01);
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.contains(k));
        }
        // And serialization preserves membership.
        let mut buf = vec![0u8; bf.serialized_len()];
        bf.write_bytes(&mut buf);
        let back = BloomFilter::from_bytes(&buf, bf.hash_count());
        for &k in &keys {
            prop_assert!(back.contains(k));
        }
    }

    /// Page codec round-trips arbitrary object batches that fit.
    #[test]
    fn page_codec_roundtrip(
        objs in prop::collection::vec((any::<u64>(), 12u32..400), 1..12)
    ) {
        let mut page = PageBuf::new(4096);
        let mut expected = Vec::new();
        for (k, s) in objs {
            if expected.iter().any(|&(ek, _)| ek == k) {
                continue;
            }
            if page.try_push(k, s) {
                expected.push((k, s));
            }
        }
        let bytes = page.finish();
        let parsed: Vec<(u64, u32)> = codec::parse_entries(&bytes).collect();
        prop_assert_eq!(parsed, expected.clone());
        for (k, _) in expected {
            let payload = codec::find_payload(&bytes, k).expect("entry present");
            prop_assert!(codec::verify_payload(k, payload));
        }
    }

    /// Flash device: whatever is appended reads back identically, and
    /// accounting matches the bytes moved.
    #[test]
    fn flash_append_read_roundtrip(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 512..513), 1..8)
    ) {
        let geom = Geometry::new(512, 16, 4, 2);
        let mut dev = SimFlash::with_latency(geom, LatencyModel::zero());
        let mut addrs = Vec::new();
        for p in &pages {
            let (addr, _) = dev.append(ZoneId(0), p, Nanos::ZERO).expect("append");
            addrs.push(addr);
        }
        for (addr, p) in addrs.iter().zip(&pages) {
            let (back, _) = dev.read_pages(*addr, 1, Nanos::ZERO).expect("read");
            prop_assert_eq!(&back, p);
        }
        prop_assert_eq!(dev.stats().pages_written, pages.len() as u64);
        prop_assert_eq!(dev.stats().bytes_written, (pages.len() * 512) as u64);
    }

    /// MemSg bookkeeping: byte/object counters always equal the sum over
    /// sets, under arbitrary insert/sacrifice interleavings.
    #[test]
    fn memsg_counters_are_consistent(
        ops in prop::collection::vec((any::<u64>(), 24u32..600, any::<bool>()), 1..300)
    ) {
        let mut sg = MemSg::for_fill_study(8, 4096);
        for (key, size, sacrifice) in ops {
            if sacrifice {
                let set = MemSg::set_index_of(key, 8);
                sg.sacrifice_at(set);
            } else {
                sg.insert(key, size);
            }
            let bytes: u64 = (0..8u32)
                .map(|s| sg.set(s).entries().iter().map(|&(_, sz)| sz as u64).sum::<u64>())
                .sum();
            let objects: u64 = (0..8u32).map(|s| sg.set(s).len() as u64).sum();
            prop_assert_eq!(bytes, sg.byte_count());
            prop_assert_eq!(objects, sg.object_count());
        }
    }

    /// Zipf sampler always returns ranks in range, for any (n, alpha).
    #[test]
    fn zipf_stays_in_range(n in 1u64..100_000, alpha in 0.2f64..2.5, seed in any::<u64>()) {
        let zipf = ZipfSampler::new(n, alpha);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Histogram percentiles are monotone in the quantile, and bounded by
    /// min/max, for arbitrary sample sets.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(any::<u32>(), 1..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s as u64);
        }
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.percentile(q);
            prop_assert!(v >= prev, "percentiles must be monotone");
            prop_assert!(v <= h.max());
            prev = v;
        }
    }
}

proptest! {
    // Fewer cases for the whole-engine property — each case replays a
    // few thousand operations.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Nemo end-to-end: any put is immediately gettable, and engine
    /// accounting never goes inconsistent.
    #[test]
    fn nemo_put_then_get_always_hits(seed in any::<u64>()) {
        let mut cfg = NemoConfig::new(Geometry::new(4096, 32, 16, 4));
        cfg.flush_threshold = 4;
        cfg.expected_objects_per_set = 16;
        cfg.index_group_sgs = 4;
        let mut nemo = Nemo::new(cfg);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for i in 0..3000u64 {
            let key = rng.next_u64();
            let size = 24 + (rng.next_below(400)) as u32;
            nemo.put(key, size, Nanos::ZERO);
            prop_assert!(
                nemo.get(key, Nanos::ZERO).hit,
                "op {i}: object must be readable right after insertion"
            );
        }
        let s = nemo.stats();
        prop_assert!(s.hits <= s.gets);
        prop_assert_eq!(s.nand_bytes_written, s.flash_bytes_written);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `EngineStats::merge` algebra on arbitrary counter values: the
    /// default is the identity, merge commutes, associates, and every
    /// counter is the plain sum.
    #[test]
    fn stats_merge_algebra(vals in prop::collection::vec(any::<u32>(), 21..22)) {
        let build = |v: &[u32]| EngineStats {
            gets: v[0] as u64,
            hits: v[1] as u64,
            puts: v[2] as u64,
            logical_bytes: v[3] as u64,
            flash_bytes_written: v[4] as u64,
            nand_bytes_written: v[5] as u64,
            flash_bytes_read: v[6] as u64,
            ..Default::default()
        };
        let a = build(&vals[0..7]);
        let b = build(&vals[7..14]);
        let c = build(&vals[14..21]);
        prop_assert_eq!(a.merge(&EngineStats::default()), a);
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let m = a.merge(&b);
        prop_assert_eq!(m.gets, a.gets + b.gets);
        prop_assert_eq!(m.logical_bytes, a.logical_bytes + b.logical_bytes);
        prop_assert_eq!(m.flash_bytes_written, a.flash_bytes_written + b.flash_bytes_written);
    }

    /// `MemoryBreakdown::merge` of splits equals the whole: carving any
    /// breakdown into two parts (per-component byte split, object split)
    /// and merging the parts reconstructs the original exactly.
    #[test]
    fn breakdown_merge_of_splits_is_whole(
        comps in prop::collection::vec((1u64..1000, 0u64..10_000), 1..8),
        objects in 0u64..1_000_000,
        num in 0u64..=1000,
    ) {
        let mut whole = MemoryBreakdown::new(objects);
        let mut left = MemoryBreakdown::new(objects * num / 1000);
        let mut right = MemoryBreakdown::new(objects - objects * num / 1000);
        for (i, &(a, b)) in comps.iter().enumerate() {
            let name = format!("component-{i}");
            let bytes = a + b;
            whole.push(&name, bytes);
            let cut = bytes * num / 1000;
            left.push(&name, cut);
            right.push(&name, bytes - cut);
        }
        prop_assert_eq!(left.merge(&right), whole);
    }
}

proptest! {
    // Fewer cases: each case replays thousands of operations on real
    // engines.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `EngineStats::merge` over a real split workload: routing a request
    /// sequence across independent shard engines (exactly what
    /// `nemo-service` does) and merging their stats reproduces the
    /// request-driven counters of the same sequence replayed on a single
    /// engine. Hit/eviction counters legitimately differ (a fleet has
    /// more aggregate capacity); what must be conserved is everything
    /// the driver issues: gets, puts, and admitted logical bytes.
    #[test]
    fn stats_merge_of_shard_splits_matches_whole_run(
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = LogCacheConfig::small();
        let mut whole = LogCache::new(cfg.clone());
        let mut parts: Vec<LogCache> = (0..shards).map(cfg.factory()).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..4000 {
            let key = rng.next_u64() % 4096;
            let size = 24 + rng.next_below(400) as u32;
            if rng.next_below(2) == 0 {
                whole.get(key, Nanos::ZERO);
                parts[shard_of(key, shards)].get(key, Nanos::ZERO);
            } else {
                whole.put(key, size, Nanos::ZERO);
                parts[shard_of(key, shards)].put(key, size, Nanos::ZERO);
            }
        }
        let merged = EngineStats::merge_all(&parts.iter().map(|p| p.stats()).collect::<Vec<_>>());
        let w = whole.stats();
        prop_assert_eq!(merged.gets, w.gets);
        prop_assert_eq!(merged.puts, w.puts);
        prop_assert_eq!(merged.logical_bytes, w.logical_bytes);
    }
}

proptest! {
    // Deep sweeps: the same whole-engine invariants at ~100x the op
    // volume of the quick block above, far past the steady-state point
    // where eviction, write-back and index-group rotation all cycle many
    // times. Kept out of the tier-1 gate to bound its runtime (each case
    // replays 300k ops — minutes in an unoptimized build); run
    // `cargo test --test property_based -- --ignored` (CI runs them as a
    // non-blocking job).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Long-horizon version of `nemo_put_then_get_always_hits`: the
    /// read-your-write and accounting invariants must survive deep into
    /// steady state, not just the first few flush cycles.
    #[test]
    #[ignore = "deep generative sweep, excluded from the tier-1 gate; run with -- --ignored"]
    fn nemo_invariants_hold_in_deep_steady_state(seed in any::<u64>()) {
        let mut cfg = NemoConfig::new(Geometry::new(4096, 32, 16, 4));
        cfg.flush_threshold = 4;
        cfg.expected_objects_per_set = 16;
        cfg.index_group_sgs = 4;
        let mut nemo = Nemo::new(cfg);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for i in 0..300_000u64 {
            let key = rng.next_u64();
            let size = 24 + (rng.next_below(400)) as u32;
            nemo.put(key, size, Nanos::ZERO);
            prop_assert!(
                nemo.get(key, Nanos::ZERO).hit,
                "op {i}: object must be readable right after insertion"
            );
        }
        let s = nemo.stats();
        prop_assert!(s.hits <= s.gets);
        prop_assert_eq!(s.nand_bytes_written, s.flash_bytes_written);
    }

    /// MemSg counter consistency under much longer interleavings than the
    /// quick block exercises (10x ops, 4x sets).
    #[test]
    #[ignore = "deep generative sweep, excluded from the tier-1 gate; run with -- --ignored"]
    fn memsg_counters_survive_long_interleavings(
        ops in prop::collection::vec((any::<u64>(), 24u32..600, any::<bool>()), 5000..8000)
    ) {
        let mut sg = MemSg::for_fill_study(32, 4096);
        for (key, size, sacrifice) in ops {
            if sacrifice {
                let set = MemSg::set_index_of(key, 32);
                sg.sacrifice_at(set);
            } else {
                sg.insert(key, size);
            }
        }
        let bytes: u64 = (0..32u32)
            .map(|s| sg.set(s).entries().iter().map(|&(_, sz)| sz as u64).sum::<u64>())
            .sum();
        let objects: u64 = (0..32u32).map(|s| sg.set(s).len() as u64).sum();
        prop_assert_eq!(bytes, sg.byte_count());
        prop_assert_eq!(objects, sg.object_count());
    }
}
