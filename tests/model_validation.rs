//! Theory-vs-practice integration tests: the simulated engines must agree
//! with the paper's analytic models (§3.2, Eq. 9, Appendix A).

use nemo_repro::analytic::{nemo_wa, HierarchicalWaModel, PbfgCostModel};
use nemo_repro::baselines::{FairyWren, FairyWrenConfig};
use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::Nanos;
use nemo_repro::sim::standard_geometry;
use nemo_repro::trace::{RequestKind, TraceConfig, TraceGenerator};

const FLASH_MB: u32 = 32;

fn trace() -> TraceGenerator {
    TraceGenerator::new(TraceConfig::twitter_merged(
        FLASH_MB as f64 * 6.0 / 337_848.0,
    ))
}

fn drive(engine: &mut dyn CacheEngine, ops: u64) {
    let mut gen = trace();
    for _ in 0..ops {
        let r = gen.next_request();
        match r.kind {
            RequestKind::Get => {
                if !engine.get(r.key, Nanos::ZERO).hit {
                    engine.put(r.key, r.size, Nanos::ZERO);
                }
            }
            RequestKind::Put => {
                engine.put(r.key, r.size, Nanos::ZERO);
            }
        }
    }
}

#[test]
fn fairywren_l2swa_scales_with_log_size_as_modelled() {
    // Eq. 6: L2SWA(P) ∝ 1/N_log, i.e. a bigger log raises the mean
    // objects per passive set write. At simulation scale the log is only
    // a handful of zones, so reclaiming one zone drains a large fraction
    // of all chains at once and the slope is compressed relative to the
    // model — the *direction* and WA consequence must still hold.
    let geometry = standard_geometry(FLASH_MB);
    let mut fw5 = FairyWren::new(FairyWrenConfig::log_op(geometry, 5, 5));
    let mut fw20 = FairyWren::new(FairyWrenConfig::log_op(geometry, 20, 5));
    drive(&mut fw5, 900_000);
    drive(&mut fw20, 900_000);
    let m5 = fw5.passive_cdf().mean();
    let m20 = fw20.passive_cdf().mean();
    assert!(
        m20 > m5 * 1.1,
        "4x log must raise the passive batch: {m5:.2} -> {m20:.2}"
    );
    let wa5 = fw5.stats().alwa();
    let wa20 = fw20.stats().alwa();
    assert!(
        wa20 < wa5,
        "a bigger log must lower FW's WA (Fig. 12b): {wa5:.2} -> {wa20:.2}"
    );
}

#[test]
fn fairywren_p_increases_with_op_like_observation_4() {
    let geometry = standard_geometry(FLASH_MB);
    let mut p_values = Vec::new();
    for op in [5u32, 20, 50] {
        let mut fw = FairyWren::new(FairyWrenConfig::log_op(geometry, 5, op));
        drive(&mut fw, 900_000);
        p_values.push(fw.passive_fraction());
    }
    assert!(
        p_values[0] < p_values[1] && p_values[1] <= p_values[2],
        "p must rise with OP (Observation 4): {p_values:?}"
    );
}

#[test]
fn fairywren_active_batches_are_smaller_than_passive() {
    // Observation 3: actively migrated objects spent ~half the residency,
    // so active set writes carry fewer new objects than passive ones.
    let geometry = standard_geometry(FLASH_MB);
    let mut fw = FairyWren::new(FairyWrenConfig::log_op(geometry, 5, 5));
    drive(&mut fw, 1_200_000);
    let (passive, active) = fw.rmw_counts();
    assert!(
        passive > 50 && active > 50,
        "need both kinds: {passive}/{active}"
    );
    assert!(
        fw.active_cdf().mean() < fw.passive_cdf().mean(),
        "active mean {} must be below passive mean {}",
        fw.active_cdf().mean(),
        fw.passive_cdf().mean()
    );
}

#[test]
fn nemo_wa_matches_equation_9_adjusted_for_writeback() {
    let mut cfg = NemoConfig::new(standard_geometry(FLASH_MB));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    let mut nemo = Nemo::new(cfg);
    drive(&mut nemo, 1_200_000);
    let fill = nemo.mean_fill_rate();
    let measured = nemo.stats().alwa();
    // Eq. 9 with the §5.2 adjustment: written-back bytes fill the SG but
    // are not logical, so measured WA >= 1/fill is not guaranteed, but it
    // must stay within a tight band around it (index writes add ~2%).
    let model = nemo_wa(fill);
    assert!(
        (measured - model).abs() / model < 0.35,
        "measured {measured:.3} vs 1/fill {model:.3}"
    );
}

#[test]
fn l2swa_model_self_consistency_at_paper_scale() {
    // Pure-model check at the paper's real scale: 360 GB, Log5-OP5.
    let pages = 360.0 * 1024.0 * 1024.0 / 4.0; // 4 KB pages
    let m = HierarchicalWaModel::from_fractions(pages, 0.05, 0.05);
    assert!((m.l2swa_passive() - 9.03).abs() < 0.1);
    // Paper §3.2: with p = 0.25, L2SWA ≈ 15.75; + log fill ≈ 1 -> FW WA
    // ~16.75 modelled vs 15.2 measured on hardware.
    let total = m.total_wa(0.95, 0.25);
    assert!((14.0..18.5).contains(&total), "total {total}");
}

#[test]
fn pbfg_model_matches_measured_index_reads() {
    // The Appendix-A model predicts per-lookup index page reads N/n when
    // nothing is cached; measure Nemo with a zero-size cache.
    let mut cfg = NemoConfig::new(standard_geometry(FLASH_MB));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    cfg.index_group_sgs = 8;
    cfg.cached_pbfg_ratio = 0.0;
    // Appendix A models the *unfiltered* walk (every live group probed
    // per lookup); the supersede cutoff deliberately probes fewer
    // groups, so switch it off to measure what the model predicts.
    cfg.enable_stale_filter = false;
    let mut nemo = Nemo::new(cfg.clone());
    drive(&mut nemo, 600_000);
    let report = nemo.report();
    let total = report.index.cache_hits + report.index.cache_misses;
    assert!(total > 0);
    let measured_miss = report.index.miss_ratio();
    // With zero cache, every persisted-group probe misses; only the
    // building group answers from memory.
    assert!(
        measured_miss > 0.5,
        "zero cache must force flash fetches: {measured_miss}"
    );
    let _ = PbfgCostModel {
        n_sgs: nemo.pool_len() as u64,
        page_size: 4096,
        objects_per_filter: 16,
    };
}
