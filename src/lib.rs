//! # nemo-repro
//!
//! A from-scratch Rust reproduction of **"Nemo: A Low-Write-Amplification
//! Cache for Tiny Objects on Log-Structured Flash Devices"** (ASPLOS '26),
//! including every substrate the paper depends on: a zoned-flash
//! simulator, a conventional-SSD FTL, Bloom-filter indexing, Twitter-like
//! workload generation, the four baseline cache engines (log-structured,
//! set-associative, Kangaroo, FairyWREN) and the replay/measurement
//! harness.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof for the examples and integration tests. Library users can depend
//! on the individual `nemo-*` crates directly.
//!
//! # Quickstart
//!
//! ```
//! use nemo_repro::core::{Nemo, NemoConfig};
//! use nemo_repro::engine::CacheEngine;
//! use nemo_repro::flash::Nanos;
//!
//! let mut cache = Nemo::new(NemoConfig::small());
//! cache.put(0xFEED, 250, Nanos::ZERO);
//! assert!(cache.get(0xFEED, Nanos::ZERO).hit);
//! println!("ALWA so far: {:.2}", cache.stats().alwa());
//! ```

/// Analytic models (paper §3.2, Appendix A, Table 6).
pub use nemo_analytic as analytic;
/// The four baseline engines (Log, Set, Kangaroo, FairyWREN).
pub use nemo_baselines as baselines;
/// Bloom filters and PBFG packing.
pub use nemo_bloom as bloom;
/// The Nemo engine itself.
pub use nemo_core as core;
/// The shared engine trait, stats and on-flash codec.
pub use nemo_engine as engine;
/// Flash devices: modeled simulators and the real-I/O backend.
pub use nemo_flash as flash;
/// Measurement utilities.
pub use nemo_metrics as metrics;
/// The memcached-text wire front-end.
pub use nemo_proto as proto;
/// The sharded concurrent front-end.
pub use nemo_service as service;
/// The replay harness.
pub use nemo_sim as sim;
/// Workload generation.
pub use nemo_trace as trace;
/// Deterministic PRNG/hash utilities.
pub use nemo_util as util;
