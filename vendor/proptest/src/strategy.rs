//! The `Strategy` trait and the scalar/tuple strategies.
//!
//! Unlike real proptest there is no value tree or shrinking: a strategy
//! is just a deterministic sampler over a [`TestRng`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce a random value of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies are composable by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // A full-width inclusive range would overflow `span`; the
                // suites here never use one.
                (lo + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// `Strategy::prop_map` equivalent used by combinator-style call sites.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Extension trait adding the mapping combinator to every strategy.
pub trait StrategyExt: Strategy + Sized {
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}
