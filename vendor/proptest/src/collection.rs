//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Length bound for collection strategies (mirrors `proptest`'s
/// `SizeRange`): inclusive low, exclusive high.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.next_below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<T>` with a sampled target size.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        // Duplicates shrink the set below target; retry a bounded number
        // of times so tiny element domains cannot loop forever.
        let mut budget = target * 10 + 100;
        while out.len() < target && budget > 0 {
            out.insert(self.element.sample(rng));
            budget -= 1;
        }
        out
    }
}

/// `prop::collection::hash_set(element, len_range)`.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_length_bounds() {
        let s = vec(any::<u64>(), 3..7);
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_reaches_target_on_large_domain() {
        let s = hash_set(any::<u64>(), 5..6);
        let mut rng = TestRng::for_case(2);
        assert_eq!(s.sample(&mut rng).len(), 5);
    }
}
