//! Per-test configuration, the case RNG and the case error type.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single sampled case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic per-case RNG (SplitMix64). Every strategy draws from
/// this; case `i` always sees the same stream for a given base seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

impl TestRng {
    /// RNG for the `case`-th sample of the property named `name`. The
    /// test name is hashed into the state so distinct properties with the
    /// same strategy shape explore different inputs rather than replaying
    /// one another's streams.
    pub fn for_named_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name gives a stable per-test offset.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::for_case(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// RNG for the `case`-th sample of a property. The base seed comes
    /// from `PROPTEST_SEED` when set (decimal or 0x-hex), else a fixed
    /// default, so failures reproduce across runs.
    pub fn for_case(case: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            })
            .unwrap_or(DEFAULT_SEED);
        // splitmix-style avalanche of (base, case) so consecutive cases
        // start in uncorrelated states.
        let mut s = Self {
            state: base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        s.next_u64();
        s
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)`; `bound` must be > 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn distinct_tests_sample_distinct_streams() {
        let a = TestRng::for_named_case("alpha", 0).next_u64();
        let b = TestRng::for_named_case("beta", 0).next_u64();
        assert_ne!(a, b, "same case of different tests must differ");
        let again = TestRng::for_named_case("alpha", 0).next_u64();
        assert_eq!(a, again, "named seeding stays deterministic");
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = TestRng::for_case(9);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }
}
