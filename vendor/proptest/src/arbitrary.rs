//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_sample(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure messages readable.
        (0x20 + rng.next_below(0x5f)) as u8 as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
