//! Minimal, offline, API-compatible shim for the [`proptest`] crate.
//!
//! The build container for this workspace has no access to crates.io, so
//! this crate implements exactly the subset of proptest that the Nemo
//! test suites use: the [`proptest!`] macro, `ProptestConfig::with_cases`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::{vec, hash_set}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the sampled inputs via the
//!   assertion message but does not minimize them.
//! - **Deterministic seeding.** Case `i` of every test derives its RNG
//!   from a fixed seed mixed with `i` (override the base seed with the
//!   `PROPTEST_SEED` environment variable). Failures therefore reproduce
//!   exactly across runs.
//! - **Rejections skip.** `prop_assume!` failures skip the case instead
//!   of resampling; there is no global rejection limit.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop`, so `prop::collection::vec(..)`
/// works as it does with the real crate.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its arguments `config.cases`
/// times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_named_case(stringify!($name), __case as u64);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {}/{} failed: {}", __case, config.cases, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n  {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Bodies actually execute for every case and see sampled inputs.
        #[test]
        fn bodies_run_and_see_inputs(x in 10u64..20, v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
        }

        /// Rejected cases are skipped without failing the test.
        #[test]
        fn assume_skips(x in 0u64..4) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// A false property must fail the generated `#[test]`.
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failing_property_panics(x in 0u64..8) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
