//! Minimal, offline, API-compatible shim for the [`criterion`] benchmark
//! harness.
//!
//! The build container for this workspace cannot reach crates.io, so this
//! crate implements the subset of criterion that the `nemo-bench` benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, finish}`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple warmup-then-timed-batches loop reporting the
//! median-free mean ns/iter — adequate for relative comparisons and for
//! keeping the bench targets compiling and runnable, not a statistical
//! replacement for real criterion. Passing `--test` (as `cargo test
//! --benches` does) runs every benchmark body once and skips timing.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Units processed per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness state shared by every benchmark group.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            test_mode,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self, &mut f);
        print_report(id, &report, None);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used for throughput reporting on
    /// subsequent `bench_function` calls.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.criterion, &mut f);
        print_report(&format!("{}/{id}", self.name), &report, self.throughput);
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing mean wall-clock ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm up, then run fixed-size batches until the measurement
        // budget elapses; the batch size is tuned so each batch is long
        // enough for Instant overhead to vanish.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            if t0.elapsed() > Duration::from_millis(2) || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            spent += t0.elapsed();
            iters += batch;
            if start.elapsed() > budget * 4 {
                break;
            }
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

struct Report {
    ns_per_iter: f64,
    test_mode: bool,
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, f: &mut F) -> Report {
    let mut b = Bencher {
        test_mode: c.test_mode,
        measurement_time: c.measurement_time,
        ns_per_iter: 0.0,
    };
    f(&mut b);
    Report {
        ns_per_iter: b.ns_per_iter,
        test_mode: c.test_mode,
    }
}

fn print_report(id: &str, report: &Report, throughput: Option<Throughput>) {
    if report.test_mode {
        println!("  {id}: ok (test mode, 1 iteration)");
        return;
    }
    let ns = report.ns_per_iter;
    let rate = |units: u64| units as f64 * 1e9 / ns.max(1e-9);
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("  {id}: {ns:.1} ns/iter ({:.2} Melem/s)", rate(n) / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            println!(
                "  {id}: {ns:.1} ns/iter ({:.1} MiB/s)",
                rate(n) / (1024.0 * 1024.0)
            );
        }
        None => println!("  {id}: {ns:.1} ns/iter"),
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` call sites.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            test_mode: false,
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        let mut acc = 0u64;
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        g.finish();
        assert!(acc > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            measurement_time: Duration::from_millis(5),
        };
        let mut calls = 0u32;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
