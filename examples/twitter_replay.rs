//! Replays the merged Twitter-like workload (paper §5.1, Table 5) against
//! Nemo and FairyWREN side by side, printing the paper's headline
//! comparison: write amplification, miss ratio, read latency — plus the
//! same Nemo capacity split into a four-shard fleet behind the
//! `nemo-service` front-end, driven by the *same* replay harness (the
//! front-end implements `CacheEngine`).
//!
//! ```text
//! cargo run --release --example twitter_replay [flash_mb] [ops] [--smoke]
//! ```
//!
//! `--smoke` (or `NEMO_SMOKE=1`) shrinks the run for CI smoke tests.

use nemo_repro::baselines::{FairyWren, FairyWrenConfig};
use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::service::ShardedCacheBuilder;
use nemo_repro::sim::{standard_geometry, Replay, ReplayConfig, ReplayResult};
use nemo_repro::trace::{TraceConfig, TraceGenerator};

const SHARDS: usize = 4;

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| a != "--smoke");
    let flash_mb: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let default_ops = if smoke() { 150_000 } else { 1_500_000 };
    let ops: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_ops);
    let geometry = standard_geometry(flash_mb);
    // Catalog ~6x flash so steady-state eviction engages.
    let trace_cfg = TraceConfig::twitter_merged(flash_mb as f64 * 6.0 / 337_848.0);
    let replay = Replay::new(ReplayConfig {
        ops,
        arrival_rate: 40_000.0,
        sample_every: (ops / 10).max(1),
        warmup_ops: ops / 4,
    });

    println!("replaying {ops} ops of the merged Twitter-like trace on {flash_mb} MB flash\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "system", "WA", "miss %", "p50 us", "p99 us", "bits/obj"
    );

    let mut nemo_cfg = NemoConfig::new(geometry);
    nemo_cfg.flush_threshold = 4;
    nemo_cfg.expected_objects_per_set = 16;
    let mut nemo = Nemo::new(nemo_cfg);
    let mut trace = TraceGenerator::new(trace_cfg.clone());
    let r = replay.run(&mut nemo, &mut trace);
    nemo.drain(r.sim_end);
    print_row("nemo", &r, nemo.stats(), nemo.memory().bits_per_object());

    // The same flash budget partitioned into a shard-per-core fleet: four
    // quarter-size Nemos behind the hash-routing front-end, driven by the
    // identical open-loop harness.
    let mut shard_cfg = NemoConfig::new(standard_geometry((flash_mb / SHARDS as u32).max(1)));
    shard_cfg.flush_threshold = 4;
    shard_cfg.expected_objects_per_set = 16;
    shard_cfg.index_group_sgs = 8;
    let mut fleet = ShardedCacheBuilder::new(SHARDS).spawn(shard_cfg.factory());
    let mut trace = TraceGenerator::new(trace_cfg.clone());
    let r = replay.run(&mut fleet, &mut trace);
    fleet.drain(r.sim_end);
    let label = format!("nemo x{SHARDS}");
    print_row(&label, &r, fleet.stats(), fleet.memory().bits_per_object());

    let mut fw = FairyWren::new(FairyWrenConfig::log_op(geometry, 5, 5));
    let mut trace = TraceGenerator::new(trace_cfg);
    let r = replay.run(&mut fw, &mut trace);
    fw.drain(r.sim_end);
    print_row("fairywren", &r, fw.stats(), fw.memory().bits_per_object());
}

fn print_row(name: &str, r: &ReplayResult, stats: nemo_repro::engine::EngineStats, bits: f64) {
    println!(
        "{:<10} {:>8.2} {:>10.2} {:>10.1} {:>10.1} {:>12.2}",
        name,
        stats.alwa(),
        stats.miss_ratio() * 100.0,
        r.latency.percentile(0.50) as f64 / 1000.0,
        r.latency.percentile(0.99) as f64 / 1000.0,
        bits
    );
}
