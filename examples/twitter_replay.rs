//! Replays the merged Twitter-like workload (paper §5.1, Table 5)
//! *open loop* against Nemo and FairyWREN side by side, printing the
//! paper's headline comparison: write amplification, miss ratio, and
//! read latency split into queueing delay and service time — plus the
//! same Nemo capacity as a four-shard fleet behind the `nemo-service`
//! front-end, driven by the same open-loop engine.
//!
//! Requests arrive at a fixed virtual-time rate whether or not the
//! system keeps up (`nemo_service::OpenLoopReplay`), so a system that
//! falls behind shows *queueing delay*, not a conveniently longer run.
//! Nemo runs with deferred background eviction: its write-back scan is
//! paced in bounded slices between requests, the role the paper's
//! dedicated background threads play, instead of bursting at flush time.
//!
//! ```text
//! cargo run --release --example twitter_replay [flash_mb] [ops] [--smoke]
//! ```
//!
//! `--smoke` (or `NEMO_SMOKE=1`) shrinks the run for CI smoke tests.

use nemo_repro::baselines::FairyWrenConfig;
use nemo_repro::core::NemoConfig;
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::Geometry;
use nemo_repro::service::{OpenLoopConfig, OpenLoopReplay};
use nemo_repro::trace::{TraceConfig, TraceGenerator};

const SHARDS: usize = 4;
/// Open-loop arrival rate (req/s of virtual time): 2.5x the 8k cap the
/// old closed-loop replay had to pace arrivals under. The bound now is
/// honest device capacity, not the write-back burst workaround.
const RATE: f64 = 20_000.0;

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

/// The single-device rows use enterprise-class die parallelism (64
/// dies, the §5.2 latency setup); the sharded row splits the same flash
/// budget into four 16-die devices, so aggregate parallelism matches
/// and the comparison isolates the front-end.
fn latency_geometry(flash_mb: u32) -> Geometry {
    Geometry::new(4096, 256, flash_mb, 64)
}

fn nemo_cfg(geometry: Geometry) -> NemoConfig {
    let mut cfg = NemoConfig::new(geometry);
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    cfg.background_eviction = true;
    cfg
}

fn run_row<E, F>(label: &str, cfg: OpenLoopConfig, factory: F, trace_cfg: &TraceConfig)
where
    E: CacheEngine + 'static,
    F: FnMut(usize) -> E,
{
    let mut trace = TraceGenerator::new(trace_cfg.clone());
    let r = OpenLoopReplay::new(cfg).run(factory, &mut trace);
    println!(
        "{:<10} {:>8.2} {:>10.2} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
        label,
        r.report.stats.alwa(),
        r.report.stats.miss_ratio() * 100.0,
        r.latency.p50() as f64 / 1000.0,
        r.latency.p99() as f64 / 1000.0,
        r.queueing.p99() as f64 / 1000.0,
        r.report.memory.bits_per_object(),
    );
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| a != "--smoke");
    let flash_mb: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let default_ops = if smoke() { 150_000 } else { 1_500_000 };
    let ops: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_ops);
    // Catalog ~6x flash so steady-state eviction engages.
    let trace_cfg = TraceConfig::twitter_merged(flash_mb as f64 * 6.0 / 337_848.0);
    let cfg = |shards: usize| {
        let mut c = OpenLoopConfig::new(ops, RATE);
        c.shards = shards;
        c.inflight = 32;
        c
    };

    println!(
        "open-loop replay: {ops} ops of the merged Twitter-like trace, {RATE:.0} req/s, \
         {flash_mb} MB flash\n"
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "system", "WA", "miss %", "p50 us", "p99 us", "q99 us", "bits/obj"
    );

    run_row(
        "nemo",
        cfg(1),
        nemo_cfg(latency_geometry(flash_mb)).factory(),
        &trace_cfg,
    );

    // The same flash budget partitioned into a shard-per-core fleet:
    // four quarter-size 16-die Nemos behind the hash-routing front-end
    // (4 x 16 = the monolith's 64 dies), under the identical aggregate
    // arrival rate.
    let mut shard_cfg = nemo_cfg(Geometry::new(
        4096,
        256,
        (flash_mb / SHARDS as u32).max(1),
        16,
    ));
    shard_cfg.index_group_sgs = 8;
    let label = format!("nemo x{SHARDS}");
    run_row(&label, cfg(SHARDS), shard_cfg.factory(), &trace_cfg);

    run_row(
        "fairywren",
        cfg(1),
        FairyWrenConfig::log_op(latency_geometry(flash_mb), 5, 5).factory(),
        &trace_cfg,
    );

    // Closed-loop cross-check: the same Nemo driven synchronously must
    // closely agree on WA and miss ratio (scan pacing shifts which hot
    // objects write-back retains, so the counters are near-identical
    // rather than bit-identical; latency is not comparable at all — a
    // blocking driver cannot observe queueing).
    let closed = {
        use nemo_repro::sim::{Replay, ReplayConfig};
        let mut nemo = nemo_repro::core::Nemo::new(nemo_cfg(latency_geometry(flash_mb)));
        let mut trace = TraceGenerator::new(trace_cfg.clone());
        let r = Replay::new(ReplayConfig {
            ops,
            arrival_rate: RATE,
            sample_every: (ops / 10).max(1),
            warmup_ops: ops / 4,
        })
        .run(&mut nemo, &mut trace);
        nemo.drain(r.sim_end);
        nemo.stats()
    };
    println!(
        "\nclosed-loop cross-check (nemo): WA {:.2}, miss {:.2}%",
        closed.alwa(),
        closed.miss_ratio() * 100.0
    );
}
