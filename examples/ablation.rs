//! Ablation of Nemo's three fill-rate techniques (paper Fig. 17) on a
//! small simulated device — a fast, self-contained version of
//! `experiments fig17`.
//!
//! ```text
//! cargo run --release --example ablation [--smoke]
//! ```
//!
//! `--smoke` (or `NEMO_SMOKE=1`) shrinks the run for CI smoke tests.

use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::Nanos;
use nemo_repro::sim::standard_geometry;
use nemo_repro::trace::{RequestKind, TraceConfig, TraceGenerator};

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn run(label: &str, b: bool, p: bool, w: bool) {
    let mut cfg = NemoConfig::new(standard_geometry(32));
    cfg.enable_buffered_sgs = b;
    cfg.enable_p_flushing = p;
    cfg.enable_writeback = w;
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    let mut nemo = Nemo::new(cfg);
    let mut gen = TraceGenerator::new(TraceConfig::twitter_merged(32.0 * 6.0 / 337_848.0));
    let ops: u64 = if smoke() { 150_000 } else { 1_500_000 };
    for _ in 0..ops {
        let r = gen.next_request();
        match r.kind {
            RequestKind::Get => {
                if !nemo.get(r.key, Nanos::ZERO).hit {
                    nemo.put(r.key, r.size, Nanos::ZERO);
                }
            }
            RequestKind::Put => {
                nemo.put(r.key, r.size, Nanos::ZERO);
            }
        }
    }
    println!(
        "{:<8} fill {:>6.2}%   WA {:>5.2}   writebacks {:>8}   sacrificed {:>6}",
        label,
        nemo.mean_fill_rate() * 100.0,
        nemo.stats().alwa(),
        nemo.report().writeback_objects,
        nemo.report().sacrificed_objects,
    );
}

fn main() {
    println!("Fig. 17 ablation (paper: naive 6.78% -> B 31.32% -> P 36.77% -> B+P 64.13% -> B+P+W 89.34%)\n");
    run("naive", false, false, false);
    run("B", true, false, false);
    run("P", false, true, false);
    run("B+P", true, true, false);
    run("B+P+W", true, true, true);
}
