//! Serving Nemo behind the sharded concurrent front-end.
//!
//! The paper's implementation runs background tasks (SG flushing,
//! write-back) on dedicated threads inside CacheLib. The simulator
//! engines are deliberately single-threaded and deterministic, so
//! `nemo-service` embeds one engine per shard and routes requests by key
//! *hash* — the same shard-per-core pattern CacheLib deploys, without a
//! lock anywhere. This example runs four shards on four worker threads,
//! feeds them a demand-fill replay through the batched fire-and-forget
//! put path, then drains every shard before reading the final numbers
//! (an undrained Nemo under-reports WA: its in-memory SGs haven't hit
//! flash yet).
//!
//! This is the *closed-loop* way to drive a fleet (every get blocks on
//! its shard). For latency measurement under offered load — bounded
//! in-flight windows, queueing vs service split — see the open-loop
//! driver in `twitter_replay` and `nemo_service::OpenLoopReplay`.
//!
//! ```text
//! cargo run --release --example concurrent_frontend [--smoke]
//! ```
//!
//! `--smoke` (or `NEMO_SMOKE=1`) shrinks the run for CI smoke tests.

use nemo_repro::core::NemoConfig;
use nemo_repro::engine::CacheEngine as _;
use nemo_repro::flash::{Geometry, Nanos};
use nemo_repro::service::ShardedCacheBuilder;
use nemo_repro::trace::{TraceConfig, TraceGenerator};

const SHARDS: usize = 4;

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn main() {
    let ops: u64 = if smoke() { 40_000 } else { 400_000 };

    // One independent Nemo instance (and simulated device) per shard —
    // exactly the partitioning Appendix A recommends for large devices.
    let mut cfg = NemoConfig::new(Geometry::new(4096, 256, 32, 8));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;
    let cache = ShardedCacheBuilder::new(SHARDS).spawn(cfg.factory());

    let mut gen = TraceGenerator::new(TraceConfig::twitter_merged(0.0005));
    for _ in 0..ops {
        let r = gen.next_request();
        if !cache.get(r.key, Nanos::ZERO).hit {
            cache.put_and_forget(r.key, r.size, Nanos::ZERO);
        }
    }

    // finish() drains every shard first, so the WA below includes the
    // objects still buffered in each shard's in-memory SGs.
    let report = cache.finish(Nanos::ZERO);
    println!(
        "processed {} ops across {SHARDS} shards, hit ratio {:.1}%, aggregate WA {:.2}",
        report.stats.gets,
        100.0 * (1.0 - report.stats.miss_ratio()),
        report.stats.alwa(),
    );
    for (i, (stats, engine)) in report.per_shard.iter().zip(&report.engines).enumerate() {
        println!(
            "  shard {i}: {:>6} gets, WA {:.2}, {} SGs on flash, {:.1} bits/obj",
            stats.gets,
            stats.alwa(),
            engine.pool_len(),
            engine.memory().bits_per_object()
        );
    }
    println!(
        "aggregate metadata: {:.1} bits/obj over {} objects",
        report.memory.bits_per_object(),
        report.memory.objects
    );
}
