//! Embedding Nemo behind a concurrent service front-end.
//!
//! The paper's implementation runs background tasks (SG flushing,
//! write-back) on dedicated threads inside CacheLib. The simulator
//! engines are deliberately single-threaded and deterministic, so a
//! service embeds one engine per shard and routes requests by key hash —
//! the same shard-per-core pattern CacheLib deploys. This example runs
//! four shards on four worker threads, each owning its engine outright
//! and fed by its own channel; no locks anywhere.
//!
//! ```text
//! cargo run --release --example concurrent_frontend
//! ```

use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::{Geometry, Nanos};
use nemo_repro::trace::{TraceConfig, TraceGenerator};
use std::sync::mpsc;
use std::thread;

const SHARDS: usize = 4;
const OPS: u64 = 400_000;

fn main() {
    // One independent Nemo instance (and simulated device) per shard —
    // exactly the partitioning Appendix A recommends for large devices.
    // Each worker owns its engine and hands it back when the feed ends.
    let mut senders = Vec::new();
    let mut workers = Vec::new();
    for _ in 0..SHARDS {
        let (tx, rx) = mpsc::sync_channel::<(u64, u32)>(1024);
        senders.push(tx);
        workers.push(thread::spawn(move || {
            let mut cfg = NemoConfig::new(Geometry::new(4096, 256, 32, 8));
            cfg.flush_threshold = 4;
            cfg.expected_objects_per_set = 16;
            let mut cache = Nemo::new(cfg);
            let mut hits = 0u64;
            let mut ops = 0u64;
            for (key, size) in rx.iter() {
                ops += 1;
                if cache.get(key, Nanos::ZERO).hit {
                    hits += 1;
                } else {
                    cache.put(key, size, Nanos::ZERO);
                }
            }
            (ops, hits, cache)
        }));
    }

    // Simple modulo routing: each shard owns the keys congruent to its
    // index, so shard state stays disjoint and deterministic.
    let mut gen = TraceGenerator::new(TraceConfig::twitter_merged(0.0005));
    for _ in 0..OPS {
        let r = gen.next_request();
        senders[r.key as usize % SHARDS]
            .send((r.key, r.size))
            .expect("workers alive");
    }
    drop(senders);

    let mut total_ops = 0;
    let mut total_hits = 0;
    let mut shards = Vec::new();
    for w in workers {
        let (ops, hits, cache) = w.join().expect("worker finished");
        total_ops += ops;
        total_hits += hits;
        shards.push(cache);
    }
    println!(
        "processed {total_ops} ops across {SHARDS} shards, hit ratio {:.1}%",
        100.0 * total_hits as f64 / total_ops.max(1) as f64
    );
    for (i, cache) in shards.iter().enumerate() {
        println!(
            "  shard {i}: WA {:.2}, {} SGs on flash, {:.1} bits/obj",
            cache.stats().alwa(),
            cache.pool_len(),
            cache.memory().bits_per_object()
        );
    }
}
