//! Run Nemo on the real-I/O backend and watch measured wall-clock
//! latency next to the modeled numbers — the zero-setup version of the
//! `experiments device_validation` methodology.
//!
//! ```text
//! cargo run --release --example real_device [--smoke] [device-dir]
//! ```
//!
//! `device-dir` is where the device image lives (default: the system
//! temp dir, usually tmpfs — point it at a mount on a real SSD to
//! measure actual hardware). `--smoke` (or `NEMO_SMOKE=1`) shrinks the
//! run for CI smoke tests.

use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::{Geometry, Nanos, RealFlash, RealFlashOptions, ZonedFlash};
use std::path::PathBuf;

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn main() {
    let dir: PathBuf = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("device directory");
    let path = dir.join("nemo_real_device_example.img");

    let flash_mb = if smoke() { 16 } else { 64 };
    let objects: u64 = if smoke() { 60_000 } else { 600_000 };

    let mut cfg = NemoConfig::new(Geometry::new(4096, 256, flash_mb, 8));
    cfg.flush_threshold = 4;
    cfg.expected_objects_per_set = 16;

    // The engine is generic over its device: same config, real I/O.
    let dev = RealFlash::create(cfg.geometry, &path, RealFlashOptions::default())
        .expect("create device file");
    let mut cache = Nemo::with_device(cfg, dev);
    println!(
        "device : {} ({} MB preallocated, buffered I/O, fsync on zone finish/reset)",
        path.display(),
        flash_mb
    );

    // Demand-fill churn; every get's completion time is *measured*: the
    // device returns now + the wall-clock duration of its syscalls.
    let mut read_lat = nemo_repro::metrics::LatencyHistogram::new();
    let mut hits = 0u64;
    for key in 0..objects {
        let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (objects / 2).max(1);
        let out = cache.get(k, Nanos::ZERO);
        if out.hit {
            hits += 1;
            if out.flash_reads > 0 {
                read_lat.record(out.done_at.0);
            }
        } else {
            cache.put(k, 200 + (k % 100) as u32, Nanos::ZERO);
        }
    }

    let stats = cache.stats();
    let dev_stats = cache.device().stats();
    println!("gets                  : {} ({} hits)", stats.gets, hits);
    println!("application-level WA  : {:.3}", stats.alwa());
    println!(
        "flash-read gets       : {} measured on the device",
        read_lat.count()
    );
    println!(
        "measured read latency : p50 {:.1}us  p99 {:.1}us  max {:.1}us",
        read_lat.p50() as f64 / 1000.0,
        read_lat.p99() as f64 / 1000.0,
        read_lat.max() as f64 / 1000.0
    );
    println!(
        "device I/O            : {} page writes, {} page reads, {} zone resets, {:.1} ms busy",
        dev_stats.pages_written,
        dev_stats.pages_read,
        dev_stats.zone_resets,
        dev_stats.busy_time.0 as f64 / 1e6
    );
    println!("(modeled reference: 70us page read, 14us page append, 2ms zone reset)");
    assert!(
        stats.alwa() < 3.0,
        "Nemo's WA character must hold on real I/O"
    );
    std::fs::remove_file(&path).ok();
}
