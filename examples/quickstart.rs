//! Quickstart: create a Nemo cache on a simulated ZNS device, insert and
//! look up tiny objects, and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [--smoke]
//! ```
//!
//! `--smoke` (or `NEMO_SMOKE=1`) shrinks the run for CI smoke tests.

use nemo_repro::core::{Nemo, NemoConfig};
use nemo_repro::engine::CacheEngine;
use nemo_repro::flash::{Geometry, Nanos};

fn smoke() -> bool {
    std::env::var_os("NEMO_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn main() {
    let objects: u64 = if smoke() { 100_000 } else { 1_000_000 };

    // A 64 MB simulated zoned device: 4 KB pages, 1 MB zones (= one
    // Set-Group each), 8 dies.
    let mut cfg = NemoConfig::new(Geometry::new(4096, 256, 64, 8));
    cfg.flush_threshold = 4; // paper's p_th, scaled to 256-set SGs
    cfg.expected_objects_per_set = 16;
    let mut cache = Nemo::new(cfg);

    // Insert tiny objects (~250 B each) and read the freshest back.
    let mut now = Nanos::ZERO;
    for key in 0..objects {
        now += Nanos::from_micros(5);
        cache.put(key, 200 + (key % 100) as u32, now);
    }
    let mut hits = 0;
    for key in objects - 1000..objects {
        now += Nanos::from_micros(5);
        if cache.get(key, now).hit {
            hits += 1;
        }
    }

    let stats = cache.stats();
    let report = cache.report();
    println!("recent-object hit ratio : {}/1000", hits);
    println!("application-level WA    : {:.3}", stats.alwa());
    println!(
        "mean SG fill rate       : {:.1}%",
        cache.mean_fill_rate() * 100.0
    );
    println!("flash SGs in pool       : {}", cache.pool_len());
    println!(
        "metadata memory         : {:.2} bits/object",
        cache.memory().bits_per_object()
    );
    println!(
        "PBFG cache miss ratio   : {:.2}%",
        report.index.miss_ratio() * 100.0
    );
    assert!(stats.alwa() < 2.0, "Nemo's WA should be near 1/fill-rate");
}
