//! Device-compatibility study (paper §6): how Nemo maps Set-Groups onto
//! different zoned hardware, and what the PBFG cost model (Appendix A)
//! says about scaling flash capacity and partitioning.
//!
//! ```text
//! cargo run --release --example zns_sizing [--smoke]
//! ```
//!
//! Pure analytic output — `--smoke` / `NEMO_SMOKE=1` are accepted for
//! uniformity with the other examples but change nothing (the run is
//! already instantaneous).

use nemo_repro::analytic::PbfgCostModel;
use nemo_repro::bloom::{sizing, PackedLayout};

struct Device {
    name: &'static str,
    zone_mb: u64,
    capacity_gb: u64,
}

fn main() {
    // The devices discussed in §6.
    let devices = [
        Device {
            name: "WD ZN540 (large zones)",
            zone_mb: 1077,
            capacity_gb: 14_000,
        },
        Device {
            name: "Samsung PM1731a (small zones)",
            zone_mb: 96,
            capacity_gb: 2_000,
        },
        Device {
            name: "Samsung FDP (8 GB reclaim units)",
            zone_mb: 8_192,
            capacity_gb: 4_000,
        },
    ];
    let page = 4096u64;
    let fpr = 0.001;
    let objs_per_set = 16u64;
    let filter_bytes = {
        let bits = (sizing::bits_per_key(fpr) * objs_per_set as f64).ceil() as u64;
        bits.div_ceil(64) * 8
    };
    let layout = PackedLayout::new(page as u32, filter_bytes as u32);

    println!(
        "set size: {page} B | BF: {filter_bytes} B at {:.1}% FPR | {} filters/page\n",
        fpr * 100.0,
        layout.filters_per_page()
    );
    println!(
        "{:<34} {:>10} {:>12} {:>10} {:>14}",
        "device", "SG (MB)", "sets/SG", "SGs", "worst reads"
    );
    for d in &devices {
        // §6: SG = one erase unit on large-zone devices; multiple small
        // zones are grouped to form one SG on small-zone devices.
        let sg_mb = d.zone_mb.max(1024);
        let sets_per_sg = sg_mb * 1024 * 1024 / page;
        let sgs = d.capacity_gb * 1024 / sg_mb;
        let model = PbfgCostModel {
            n_sgs: sgs,
            page_size: page as u32,
            objects_per_filter: objs_per_set as u32,
        };
        println!(
            "{:<34} {:>10} {:>12} {:>10} {:>14.1}",
            d.name,
            sg_mb,
            sets_per_sg,
            sgs,
            model.total_reads(fpr)
        );
    }

    // Appendix A's remedy for big devices: partition into independent
    // cache instances to bound the per-lookup cost.
    println!("\npartitioning a 14 TB device (Appendix A):");
    for parts in [1u64, 4, 16, 64] {
        let model = PbfgCostModel {
            n_sgs: 14_000 * 1024 / 1077 / parts,
            page_size: 4096,
            objects_per_filter: 16,
        };
        println!(
            "  {parts:>3} partitions -> {:>6} SGs each, worst-case reads {:>6.1}",
            model.n_sgs,
            model.total_reads(fpr)
        );
    }
}
